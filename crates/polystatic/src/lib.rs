//! # polystatic — the "Polly" static-analysis baseline (paper §8,
//! Experiment II)
//!
//! A static affine-region modeler over `polyir`, reproducing the structural
//! conditions under which LLVM Polly fails to model the Rodinia kernels.
//! For every function it attempts to model the outermost loop nests as
//! static control parts (SCoPs) and reports the paper's failure codes:
//!
//! * **R** — unhandled function call inside the region;
//! * **C** — complex CFG (early return / break out of the loop);
//! * **B** — non-affine loop bound or non-affine conditional;
//! * **F** — non-affine access function (including pointer indirection and
//!   modulo-linearized indexing);
//! * **A** — possible aliasing between pointer parameters;
//! * **P** — base pointer not loop invariant (loaded inside the region).
//!
//! The analysis is deliberately *static and conservative*, exactly the
//! contrast the paper draws: it sees the whole CFG (not just executed
//! paths), must assume the worst about pointers, and cannot look through
//! calls — while Poly-Prof observes one execution and models it precisely.

pub mod dataflow;
pub mod lint;

use polycfg::loop_forest::LoopForest;
use polyir::*;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Why static modeling failed (paper Table 5 "Reasons why Polly failed").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Reason {
    /// Unhandled function call.
    R,
    /// Complex CFG (break / early return).
    C,
    /// Non-affine loop bound or conditional.
    B,
    /// Non-affine access function.
    F,
    /// Possible pointer aliasing.
    A,
    /// Base pointer not loop invariant.
    P,
}

impl fmt::Display for Reason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Render a reason set like the paper ("RCBF").
pub fn reasons_string(rs: &BTreeSet<Reason>) -> String {
    rs.iter().map(|r| format!("{r}")).collect()
}

/// Verdict for one loop region.
#[derive(Debug, Clone)]
pub struct RegionVerdict {
    /// Function containing the region.
    pub func: FuncId,
    /// Header block of the outermost loop of the region.
    pub header: LocalBlockId,
    /// Loop depth of the region.
    pub depth: u32,
    /// True if the region was fully modeled as affine.
    pub modeled: bool,
    /// Failure reasons (empty iff modeled).
    pub reasons: BTreeSet<Reason>,
}

/// Whole-program static modeling report.
#[derive(Debug, Clone, Default)]
pub struct StaticReport {
    /// Per-region verdicts.
    pub regions: Vec<RegionVerdict>,
}

impl StaticReport {
    /// True iff every region was modeled.
    pub fn all_modeled(&self) -> bool {
        self.regions.iter().all(|r| r.modeled)
    }

    /// Union of failure reasons over all regions.
    pub fn reasons(&self) -> BTreeSet<Reason> {
        self.regions
            .iter()
            .flat_map(|r| r.reasons.iter().copied())
            .collect()
    }

    /// Paper-style summary string ("RCBF", or "-" when everything modeled).
    pub fn summary(&self) -> String {
        let rs = self.reasons();
        if rs.is_empty() {
            "-".into()
        } else {
            reasons_string(&rs)
        }
    }
}

/// A flow-insensitive symbolic value for static affine reasoning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Sym {
    /// A compile-time constant.
    Const(i64),
    /// A linear form over parameters and induction variables: base symbols
    /// with integer coefficients plus a constant.
    Linear(BTreeMap<Base, i64>, i64),
    /// Loaded from memory (indirection).
    FromLoad,
    /// Result of non-affine arithmetic (div/rem/mul of variables, float…).
    NonAffine,
    /// Result of a call.
    FromCall,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Base {
    /// Function parameter `i`.
    Param(u32),
    /// Induction variable of the loop headed at this block.
    Iv(LocalBlockId),
}

/// Classify the registers of a function flow-insensitively.
pub(crate) fn classify_registers(f: &Function, forest: &LoopForest) -> Vec<Sym> {
    let n = f.n_regs as usize;
    // Collect all defs per register.
    let mut defs: Vec<Vec<(&Instr, LocalBlockId)>> = vec![Vec::new(); n];
    for (bi, b) in f.blocks.iter().enumerate() {
        for ins in &b.instrs {
            if let Some(d) = ins.def() {
                defs[d.0 as usize].push((ins, LocalBlockId(bi as u32)));
            }
        }
    }

    let mut sym: Vec<Sym> = (0..n)
        .map(|i| {
            if (i as u32) < f.n_params {
                Sym::Linear([(Base::Param(i as u32), 1)].into_iter().collect(), 0)
            } else {
                Sym::NonAffine
            }
        })
        .collect();

    // Identify induction variables: one external init def plus self-increment
    // defs `r = r + const` inside a loop.
    let mut iv_of: BTreeMap<u32, LocalBlockId> = BTreeMap::new();
    for r in 0..n as u32 {
        if (r) < f.n_params {
            continue;
        }
        let ds = &defs[r as usize];
        if ds.is_empty() {
            continue;
        }
        let mut init = 0usize;
        let mut self_inc_blocks = Vec::new();
        let mut other = 0usize;
        for (ins, blk) in ds {
            match ins {
                Instr::IOp {
                    dst,
                    op: IBinOp::Add | IBinOp::Sub,
                    a,
                    b,
                } if *dst == Reg(r)
                    && ((*a == Operand::Reg(Reg(r)) && matches!(b, Operand::ImmI(_)))
                        || (*b == Operand::Reg(Reg(r)) && matches!(a, Operand::ImmI(_)))) =>
                {
                    self_inc_blocks.push(*blk);
                }
                Instr::Const { .. } | Instr::Move { .. } => init += 1,
                _ => other += 1,
            }
        }
        if !self_inc_blocks.is_empty() && other == 0 && init <= 1 {
            // The IV belongs to the innermost loop containing its increment.
            if let Some(l) = forest.innermost(self_inc_blocks[0]) {
                let header = forest.info(l).header;
                iv_of.insert(r, header);
            }
        }
    }

    // Fixpoint linear evaluation (few rounds suffice at our sizes).
    for _ in 0..4 {
        let mut changed = false;
        for r in 0..n as u32 {
            if r < f.n_params {
                continue;
            }
            if let Some(h) = iv_of.get(&r) {
                let v = Sym::Linear([(Base::Iv(*h), 1)].into_iter().collect(), 0);
                if sym[r as usize] != v {
                    sym[r as usize] = v;
                    changed = true;
                }
                continue;
            }
            let ds = &defs[r as usize];
            let v = if ds.is_empty() {
                Sym::Const(0)
            } else if ds.len() > 1 {
                Sym::NonAffine
            } else {
                eval_instr(ds[0].0, &sym)
            };
            if sym[r as usize] != v {
                sym[r as usize] = v;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    sym
}

pub(crate) fn eval_operand(o: &Operand, sym: &[Sym]) -> Sym {
    match o {
        Operand::Reg(r) => sym[r.0 as usize].clone(),
        Operand::ImmI(v) => Sym::Const(*v),
        Operand::ImmF(_) => Sym::NonAffine,
    }
}

fn lin_of(s: &Sym) -> Option<(BTreeMap<Base, i64>, i64)> {
    match s {
        Sym::Const(c) => Some((BTreeMap::new(), *c)),
        Sym::Linear(m, c) => Some((m.clone(), *c)),
        _ => None,
    }
}

pub(crate) fn eval_instr(ins: &Instr, sym: &[Sym]) -> Sym {
    match ins {
        Instr::Const {
            value: Value::I64(v),
            ..
        } => Sym::Const(*v),
        Instr::Const { .. } => Sym::NonAffine,
        Instr::Move { src, .. } => eval_operand(src, sym),
        Instr::IOp { op, a, b, .. } => {
            let (sa, sb) = (eval_operand(a, sym), eval_operand(b, sym));
            match op {
                IBinOp::Add | IBinOp::Sub => match (lin_of(&sa), lin_of(&sb)) {
                    (Some((ma, ca)), Some((mb, cb))) => {
                        let sign = if matches!(op, IBinOp::Add) { 1 } else { -1 };
                        let mut m = ma;
                        for (k, v) in mb {
                            *m.entry(k).or_insert(0) += sign * v;
                        }
                        m.retain(|_, v| *v != 0);
                        Sym::Linear(m, ca + sign * cb)
                    }
                    _ => propagate_worst(&sa, &sb),
                },
                IBinOp::Mul | IBinOp::Shl => {
                    // linear × constant stays linear
                    match (lin_of(&sa), lin_of(&sb)) {
                        (Some((ma, ca)), Some((mb, cb))) => {
                            let factor = |m: &BTreeMap<Base, i64>, c: i64| {
                                if m.is_empty() {
                                    Some(c)
                                } else {
                                    None
                                }
                            };
                            let k = if matches!(op, IBinOp::Shl) {
                                factor(&mb, cb).map(|s| 1i64 << (s.clamp(0, 62)))
                            } else {
                                factor(&mb, cb)
                            };
                            if let Some(k) = k {
                                let m: BTreeMap<Base, i64> =
                                    ma.into_iter().map(|(b, v)| (b, v * k)).collect();
                                return Sym::Linear(m, ca * k);
                            }
                            if matches!(op, IBinOp::Mul) {
                                if let Some(k) = factor(&ma, ca) {
                                    let m: BTreeMap<Base, i64> =
                                        mb.into_iter().map(|(b, v)| (b, v * k)).collect();
                                    return Sym::Linear(m, cb * k);
                                }
                            }
                            Sym::NonAffine
                        }
                        _ => propagate_worst(&sa, &sb),
                    }
                }
                // Division / modulo / bit tricks: statically non-affine.
                _ => Sym::NonAffine,
            }
        }
        Instr::ICmp { .. } | Instr::FCmp { .. } => Sym::NonAffine,
        Instr::FOp { .. } | Instr::Un { .. } => Sym::NonAffine,
        Instr::Load { .. } => Sym::FromLoad,
        Instr::Store { .. } => Sym::NonAffine,
        Instr::Call { .. } => Sym::FromCall,
    }
}

/// The worse of two non-linear classifications (FromLoad dominates, then
/// FromCall, then NonAffine).
fn propagate_worst(a: &Sym, b: &Sym) -> Sym {
    for s in [a, b] {
        if matches!(s, Sym::FromLoad) {
            return Sym::FromLoad;
        }
    }
    for s in [a, b] {
        if matches!(s, Sym::FromCall) {
            return Sym::FromCall;
        }
    }
    Sym::NonAffine
}

/// Statically analyze one function's outermost loop regions.
pub fn analyze_function(prog: &Program, fid: FuncId) -> Vec<RegionVerdict> {
    let f = prog.func(fid);
    // Static CFG.
    let blocks: BTreeSet<LocalBlockId> = (0..f.blocks.len() as u32).map(LocalBlockId).collect();
    let mut edges = BTreeSet::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for s in b.term.successors() {
            edges.insert((LocalBlockId(bi as u32), s));
        }
    }
    let forest = LoopForest::build(&blocks, &edges, f.entry());
    let sym = classify_registers(f, &forest);

    // Pointer parameters: params used as access bases.
    let mut outer: Vec<RegionVerdict> = Vec::new();
    for (li, l) in forest.loops.iter().enumerate() {
        if l.parent.is_some() {
            continue; // analyze outermost regions; nested issues roll up
        }
        let mut reasons = BTreeSet::new();
        let mut param_bases: BTreeSet<u32> = BTreeSet::new();
        let mut param_store_bases: BTreeSet<u32> = BTreeSet::new();
        for &bid in &l.blocks {
            let b = f.block(bid);
            // C: early return from inside the loop, or a branch that leaves
            // the loop from a non-header block (break).
            match &b.term {
                Terminator::Ret(_) => {
                    reasons.insert(Reason::C);
                }
                Terminator::Br { cond, then_, else_ } => {
                    let exits = [then_, else_]
                        .iter()
                        .filter(|t| !l.blocks.contains(t))
                        .count();
                    if exits > 0 && bid != l.header {
                        reasons.insert(Reason::C);
                    }
                    // B: header or guard condition must compare affine forms.
                    // Every definition of the condition register is checked
                    // (a region can fail B in several ways at once): any
                    // non-affine integer-compare side, any float compare, or
                    // any non-compare (opaque) definition.
                    if let Operand::Reg(r) = cond {
                        let mut any_def = false;
                        for ins in f.blocks.iter().flat_map(|bb| &bb.instrs) {
                            if ins.def() != Some(*r) {
                                continue;
                            }
                            any_def = true;
                            match ins {
                                Instr::ICmp { a, b, .. } => {
                                    for s in [eval_operand(a, &sym), eval_operand(b, &sym)] {
                                        match s {
                                            Sym::Const(_) | Sym::Linear(..) => {}
                                            _ => {
                                                reasons.insert(Reason::B);
                                            }
                                        }
                                    }
                                }
                                _ => {
                                    // float compare or opaque condition
                                    reasons.insert(Reason::B);
                                }
                            }
                        }
                        if !any_def {
                            reasons.insert(Reason::B);
                        }
                    }
                }
                _ => {}
            }
            for ins in &b.instrs {
                match ins {
                    Instr::Call { .. } => {
                        reasons.insert(Reason::R);
                    }
                    Instr::Load { base, offset, .. } | Instr::Store { base, offset, .. } => {
                        let sb = eval_operand(base, &sym);
                        let so = eval_operand(offset, &sym);
                        // Base classification.
                        match &sb {
                            Sym::Const(_) => {}
                            Sym::Linear(m, _) => {
                                for k in m.keys() {
                                    if let Base::Param(p) = k {
                                        param_bases.insert(*p);
                                        if matches!(ins, Instr::Store { .. }) {
                                            param_store_bases.insert(*p);
                                        }
                                    }
                                }
                            }
                            Sym::FromLoad => {
                                reasons.insert(Reason::P);
                            }
                            Sym::FromCall => {
                                reasons.insert(Reason::R);
                            }
                            Sym::NonAffine => {
                                reasons.insert(Reason::F);
                            }
                        }
                        // Offset classification.
                        match &so {
                            Sym::Const(_) | Sym::Linear(..) => {}
                            Sym::FromLoad => {
                                reasons.insert(Reason::F);
                            }
                            _ => {
                                reasons.insert(Reason::F);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        // A: stores through a pointer parameter while other pointer params
        // are accessed — without alias information Polly must assume overlap.
        if !param_store_bases.is_empty() && param_bases.len() >= 2 {
            reasons.insert(Reason::A);
        }
        outer.push(RegionVerdict {
            func: fid,
            header: l.header,
            depth: forest
                .loops
                .iter()
                .filter(|x| x.blocks.is_subset(&l.blocks))
                .map(|x| x.depth)
                .max()
                .unwrap_or(1),
            modeled: reasons.is_empty(),
            reasons,
        });
        let _ = li;
    }
    outer
}

/// Statically analyze the whole program.
pub fn analyze_program(prog: &Program) -> StaticReport {
    let mut regions = Vec::new();
    for fi in 0..prog.funcs.len() as u32 {
        regions.extend(analyze_function(prog, FuncId(fi)));
    }
    StaticReport { regions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyir::build::ProgramBuilder;

    /// A clean affine kernel over global arrays: fully modeled.
    #[test]
    fn clean_affine_kernel_modeled() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.alloc(64);
        let b = pb.alloc(64);
        let mut f = pb.func("main", 0);
        f.for_loop("Li", 0i64, 8i64, 1, |f, i| {
            f.for_loop("Lj", 0i64, 8i64, 1, |f, j| {
                let row = f.mul(i, 8i64);
                let idx = f.add(row, j);
                let v = f.load(a as i64, idx);
                let w = f.fmul(v, 2.0f64);
                f.store(b as i64, idx, w);
            });
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let rep = analyze_program(&p);
        assert!(rep.all_modeled(), "reasons: {}", rep.summary());
        assert_eq!(rep.summary(), "-");
    }

    /// A call inside the loop → R.
    #[test]
    fn call_in_loop_gives_r() {
        let mut pb = ProgramBuilder::new("t");
        let mut g = pb.func("g", 0);
        g.const_i(1);
        g.ret(None);
        let g_id = g.finish();
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 8i64, 1, |f, _| {
            f.call_void(g_id, &[]);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let rep = analyze_program(&p);
        assert!(rep.reasons().contains(&Reason::R));
        assert!(!rep.all_modeled());
    }

    /// Early return from a loop → C.
    #[test]
    fn early_return_gives_c() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.alloc(16);
        let mut f = pb.func("main", 0);
        let iv = f.const_i(0);
        let header = f.block("h");
        let body = f.block("b");
        let out = f.block("out");
        f.jump(header);
        f.switch_to(header);
        let c = f.icmp(CmpOp::Lt, iv, 10i64);
        f.br(c, body, out);
        f.switch_to(body);
        let v = f.load(a as i64, iv);
        let stop = f.icmp(CmpOp::Gt, v, 100i64);
        let retb = f.block("ret");
        let cont = f.block("cont");
        f.br(stop, retb, cont);
        f.switch_to(retb);
        f.ret(None);
        f.switch_to(cont);
        f.iop_to(iv, IBinOp::Add, iv, 1i64);
        f.jump(header);
        f.switch_to(out);
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let rep = analyze_program(&p);
        assert!(rep.reasons().contains(&Reason::C), "{}", rep.summary());
    }

    /// Loop bound loaded from memory → B.
    #[test]
    fn data_dependent_bound_gives_b() {
        let mut pb = ProgramBuilder::new("t");
        let nbase = pb.array_i64(&[8]);
        let mut f = pb.func("main", 0);
        let n = f.load(nbase as i64, 0i64);
        f.for_loop("L", 0i64, n, 1, |f, i| {
            f.add(i, 1i64);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let rep = analyze_program(&p);
        assert!(rep.reasons().contains(&Reason::B), "{}", rep.summary());
    }

    /// Indirect access a[b[i]] → F.
    #[test]
    fn indirection_gives_f() {
        let mut pb = ProgramBuilder::new("t");
        let idx = pb.array_i64(&[1, 0, 3, 2]);
        let a = pb.alloc(8);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 4i64, 1, |f, i| {
            let k = f.load(idx as i64, i);
            f.load(a as i64, k);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let rep = analyze_program(&p);
        assert!(rep.reasons().contains(&Reason::F), "{}", rep.summary());
    }

    /// Modulo indexing → F (hand-linearized loops of heartwall/hotspot/lud).
    #[test]
    fn modulo_indexing_gives_f() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.alloc(16);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 16i64, 1, |f, i| {
            let m = f.rem(i, 5i64);
            f.load(a as i64, m);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let rep = analyze_program(&p);
        assert!(rep.reasons().contains(&Reason::F), "{}", rep.summary());
    }

    /// Two pointer parameters with a store → A (possible aliasing).
    #[test]
    fn pointer_params_give_a() {
        let mut pb = ProgramBuilder::new("t");
        let mut g = pb.func("kernel", 2);
        let src = g.param(0);
        let dst = g.param(1);
        g.for_loop("L", 0i64, 8i64, 1, |g, i| {
            let v = g.load(src, i);
            g.store(dst, i, v);
        });
        g.ret(None);
        let g_id = g.finish();
        let a = pb.alloc(16);
        let b = pb.alloc(16);
        let mut m = pb.func("main", 0);
        m.call_void(g_id, &[Operand::ImmI(a as i64), Operand::ImmI(b as i64)]);
        m.ret(None);
        let mid = m.finish();
        pb.set_entry(mid);
        let p = pb.finish();
        let rep = analyze_program(&p);
        assert!(rep.reasons().contains(&Reason::A), "{}", rep.summary());
    }

    /// Pointer loaded inside the loop used as a base → P.
    #[test]
    fn loaded_base_gives_p() {
        let mut pb = ProgramBuilder::new("t");
        let table = pb.array_i64(&[0x2000, 0x3000]);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 2i64, 1, |f, i| {
            let base = f.load(table as i64, i); // base pointer from memory
            f.load(base, 0i64);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let rep = analyze_program(&p);
        assert!(rep.reasons().contains(&Reason::P), "{}", rep.summary());
    }

    /// One region exhibiting several failure modes at once must report ALL
    /// of them on the same verdict, not just the first one found.
    #[test]
    fn single_region_reports_all_applicable_reasons() {
        let mut pb = ProgramBuilder::new("t");
        let nbase = pb.array_i64(&[6]);
        let idx = pb.array_i64(&[1, 0, 3, 2, 5, 4]);
        let a = pb.alloc(16);
        let mut g = pb.func("g", 0);
        g.ret(None);
        let g_id = g.finish();
        let mut f = pb.func("main", 0);
        let n = f.load(nbase as i64, 0i64); // data-dependent bound → B
        f.for_loop("L", 0i64, n, 1, |f, i| {
            f.call_void(g_id, &[]); // call in loop → R
            let k = f.load(idx as i64, i); // indirection …
            f.load(a as i64, k); // … a[idx[i]] → F
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let rep = analyze_program(&p);
        // All three reasons must sit on ONE region, not be spread across the
        // program-level union.
        let region = rep
            .regions
            .iter()
            .find(|r| !r.modeled)
            .expect("the loop region must fail modeling");
        for want in [Reason::R, Reason::B, Reason::F] {
            assert!(
                region.reasons.contains(&want),
                "region missing {want}: {}",
                reasons_string(&region.reasons)
            );
        }
    }

    /// A condition register with a *second*, non-affine compare definition
    /// must still trip B — every def of the register is checked, not just
    /// the first one encountered.
    #[test]
    fn second_compare_def_still_gives_b() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array_i64(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut f = pb.func("main", 0);
        let iv = f.const_i(0);
        // First def: affine compare (iv < 8).
        let c = f.icmp(CmpOp::Lt, iv, 8i64);
        let header = f.block("h");
        let body = f.block("b");
        let out = f.block("out");
        f.jump(header);
        f.switch_to(header);
        f.br(c, body, out);
        f.switch_to(body);
        let v = f.load(a as i64, iv);
        f.iop_to(iv, IBinOp::Add, iv, 1i64);
        // Second def of the SAME condition register: data-dependent compare.
        f.raw_instr(Instr::ICmp {
            dst: c,
            op: CmpOp::Lt,
            a: Operand::Reg(v),
            b: Operand::ImmI(8),
        });
        f.jump(header);
        f.switch_to(out);
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let rep = analyze_program(&p);
        assert!(
            rep.reasons().contains(&Reason::B),
            "data-dependent second def of the exit condition must give B: {}",
            rep.summary()
        );
    }

    #[test]
    fn reasons_string_is_sorted() {
        let rs: BTreeSet<Reason> = [Reason::F, Reason::R, Reason::B].into_iter().collect();
        assert_eq!(
            reasons_string(&rs),
            "RCBFAP"
                .chars()
                .filter(|c| "RBF".contains(*c))
                .collect::<String>()
        );
    }
}
