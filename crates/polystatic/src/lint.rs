//! Post-fold DDG lint: check the dynamic profile against static claims.
//!
//! The static pre-pass ([`crate::dataflow`]) makes falsifiable claims about
//! any execution of the program: the static loop forest over-approximates
//! the dynamic one, certain flow dependences must appear, statically
//! disjoint base-pointer partitions can never exchange memory dependences,
//! and statically proven SCEV statements must be dynamically classified as
//! SCEV. This module checks every claim against one folded run and reports
//! violations — each one is a bug in either the static pass, the profiler,
//! or the folder, which is why CI treats any violation as a hard error.
//!
//! The lint runs on the folded DDG *before* `remove_scevs()`: the
//! SCEV-marking and must-flow checks inspect exactly the statements and
//! dependences that removal would delete.

use crate::dataflow::StaticSummary;
use polycfg::StaticStructure;
use polyfold::FoldedDdg;
use polyiiv::context::ContextInterner;
use polyir::{FuncId, Program};
use std::collections::BTreeMap;
use std::fmt;

/// Which static claim a violation falsified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintKind {
    /// The dynamic loop forest is not a refinement of the static one.
    ForestRefinement,
    /// A statically-must-exist flow dependence is missing from the fold.
    MissingMustFlow,
    /// A memory dependence crosses statically-disjoint partitions.
    CrossPartitionDep,
    /// A statically-proven SCEV statement was not dynamically classified.
    UnmarkedScev,
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LintKind::ForestRefinement => "forest-refinement",
            LintKind::MissingMustFlow => "missing-must-flow",
            LintKind::CrossPartitionDep => "cross-partition-dep",
            LintKind::UnmarkedScev => "unmarked-scev",
        };
        f.write_str(s)
    }
}

/// One falsified claim.
#[derive(Debug, Clone)]
pub struct LintViolation {
    /// The claim category.
    pub kind: LintKind,
    /// Human-readable description of the instance.
    pub detail: String,
}

/// Result of linting one folded run.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Number of individual claims checked.
    pub checks: u64,
    /// Falsified claims (empty = lint passed).
    pub violations: Vec<LintViolation>,
}

impl LintReport {
    /// Did every check pass?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    fn fail(&mut self, kind: LintKind, detail: String) {
        self.violations.push(LintViolation { kind, detail });
    }
}

/// Lint one folded run (`ddg` must be pre-`remove_scevs`).
pub fn lint_ddg(
    prog: &Program,
    summary: &StaticSummary,
    ddg: &FoldedDdg,
    interner: &ContextInterner,
    structure: &StaticStructure,
) -> LintReport {
    let mut rep = LintReport::default();
    check_forest_refinement(prog, summary, structure, &mut rep);
    check_must_flow(summary, ddg, interner, &mut rep);
    check_partitions(summary, ddg, interner, &mut rep);
    check_scev_marks(summary, ddg, interner, &mut rep);
    rep
}

/// Claim 1: every dynamically observed edge exists statically, and every
/// dynamic loop nests inside a static loop consistently with its parent.
/// (The dynamic forest is built over the *executed* subgraph, so its loops
/// may shrink, split, or vanish relative to the static forest — but never
/// exceed it.)
fn check_forest_refinement(
    prog: &Program,
    summary: &StaticSummary,
    structure: &StaticStructure,
    rep: &mut LintReport,
) {
    for (&fid, cfg) in &structure.cfgs {
        let f = prog.func(fid);
        let fd = &summary.funcs[fid.0 as usize];
        for &(u, v) in &cfg.edges {
            rep.checks += 1;
            if !f.block(u).term.successors().contains(&v) {
                rep.fail(
                    LintKind::ForestRefinement,
                    format!(
                        "{}: observed edge b{}→b{} is not a static successor",
                        f.name, u.0, v.0
                    ),
                );
            }
        }
        let dyn_forest = match structure.forests.get(&fid) {
            Some(fr) => fr,
            None => continue,
        };
        // Smallest static loop containing all blocks of each dynamic loop.
        let container = |blocks: &std::collections::BTreeSet<polyir::LocalBlockId>| {
            fd.forest
                .loops
                .iter()
                .enumerate()
                .filter(|(_, sl)| blocks.is_subset(&sl.blocks))
                .max_by_key(|(_, sl)| sl.depth)
                .map(|(i, _)| i)
        };
        let mut container_of: Vec<Option<usize>> = Vec::with_capacity(dyn_forest.loops.len());
        for (li, dl) in dyn_forest.loops.iter().enumerate() {
            rep.checks += 1;
            let c = container(&dl.blocks);
            if c.is_none() {
                rep.fail(
                    LintKind::ForestRefinement,
                    format!(
                        "{}: dynamic loop at b{} not contained in any static loop",
                        f.name, dl.header.0
                    ),
                );
            }
            container_of.push(c);
            // Nesting consistency: the containing static loops of child and
            // parent must themselves be nested (or equal).
            if let Some(p) = dl.parent {
                rep.checks += 1;
                if let (Some(cc), Some(pc)) = (container_of[li], container_of[p.0 as usize]) {
                    let (cb, pb) = (&fd.forest.loops[cc].blocks, &fd.forest.loops[pc].blocks);
                    if !cb.is_subset(pb) {
                        rep.fail(
                            LintKind::ForestRefinement,
                            format!(
                                "{}: dynamic nesting b{} in b{} contradicts static forest",
                                f.name, dl.header.0, dyn_forest.loops[p.0 as usize].header.0
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Claim 2: every statically-must-exist flow dependence appears in the fold
/// for every context the consuming load folded under.
fn check_must_flow(
    summary: &StaticSummary,
    ddg: &FoldedDdg,
    interner: &ContextInterner,
    rep: &mut LintReport,
) {
    if summary.must_flow.is_empty() {
        return;
    }
    // instr → folded stmt ids, to find each load's dynamic incarnations.
    let mut by_instr: BTreeMap<polyir::InstrRef, Vec<polyiiv::context::StmtId>> = BTreeMap::new();
    for &s in ddg.stmts.keys() {
        by_instr
            .entry(interner.stmt_info(s).instr)
            .or_default()
            .push(s);
    }
    for mf in &summary.must_flow {
        for &load_stmt in by_instr.get(&mf.load).map(Vec::as_slice).unwrap_or(&[]) {
            rep.checks += 1;
            let found = ddg.deps.iter().any(|d| {
                d.kind == polyddg::DepKind::Flow
                    && d.dst == load_stmt
                    && interner.stmt_info(d.src).instr == mf.store
            });
            if !found {
                rep.fail(
                    LintKind::MissingMustFlow,
                    format!(
                        "flow dep {:?} → {:?} (stmt {:?}) statically required, absent in fold",
                        mf.store, mf.load, load_stmt
                    ),
                );
            }
        }
    }
}

/// Claim 3: no memory dependence connects two access sites placed in
/// different (statically disjoint) base-pointer partitions.
fn check_partitions(
    summary: &StaticSummary,
    ddg: &FoldedDdg,
    interner: &ContextInterner,
    rep: &mut LintReport,
) {
    if summary.partitions.is_empty() {
        return;
    }
    for d in &ddg.deps {
        if d.kind == polyddg::DepKind::Reg {
            continue;
        }
        rep.checks += 1;
        let (si, di) = (
            interner.stmt_info(d.src).instr,
            interner.stmt_info(d.dst).instr,
        );
        if let (Some(&ps), Some(&pd)) = (summary.partitions.get(&si), summary.partitions.get(&di)) {
            if ps != pd {
                rep.fail(
                    LintKind::CrossPartitionDep,
                    format!(
                        "{:?} dep {:?} → {:?} crosses partitions {} → {}",
                        d.kind, si, di, ps, pd
                    ),
                );
            }
        }
    }
}

/// Claim 4: every folded statement whose instruction is statically proven
/// SCEV carries the dynamic `is_scev` mark.
fn check_scev_marks(
    summary: &StaticSummary,
    ddg: &FoldedDdg,
    interner: &ContextInterner,
    rep: &mut LintReport,
) {
    for s in ddg.stmts.values() {
        let instr = interner.stmt_info(s.stmt).instr;
        if !summary.is_proven_scev(instr) {
            continue;
        }
        rep.checks += 1;
        if !s.is_scev {
            let fid = FuncId(instr.block.func.0);
            rep.fail(
                LintKind::UnmarkedScev,
                format!(
                    "stmt {:?} at {:?} (fn {}) statically proven SCEV ({:?}) but not marked",
                    s.stmt,
                    instr,
                    fid.0,
                    summary.scev_kind(instr)
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polycfg::loop_forest::LoopForest;
    use polycfg::DynCfg;
    use polyir::build::ProgramBuilder;
    use polyir::LocalBlockId;
    use std::collections::BTreeSet;

    fn loop_program() -> Program {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.alloc(16);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 8i64, 1, |f, i| {
            let v = f.add(i, 0i64);
            f.store(a as i64, i, v);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        pb.finish()
    }

    /// A dynamic structure observing a subset of the static CFG.
    fn dyn_structure(prog: &Program, edges: &[(u32, u32)]) -> StaticStructure {
        let fid = prog.entry.unwrap();
        let es: BTreeSet<(LocalBlockId, LocalBlockId)> = edges
            .iter()
            .map(|&(u, v)| (LocalBlockId(u), LocalBlockId(v)))
            .collect();
        let blocks: BTreeSet<LocalBlockId> = es.iter().flat_map(|&(u, v)| [u, v]).collect();
        let forest = LoopForest::build(&blocks, &es, prog.func(fid).entry());
        let mut s = StaticStructure::default();
        s.cfgs.insert(fid, DynCfg { blocks, edges: es });
        s.forests.insert(fid, forest);
        s
    }

    #[test]
    fn refinement_accepts_executed_subgraph() {
        let p = loop_program();
        let summary = StaticSummary::analyze(&p);
        // The real execution path: entry→header→body→latch→header, header→exit.
        let s = dyn_structure(&p, &[(0, 1), (1, 2), (2, 3), (3, 1), (1, 4)]);
        let rep = lint_ddg(
            &p,
            &summary,
            &FoldedDdg::default(),
            &ContextInterner::new(),
            &s,
        );
        assert!(rep.ok(), "{:?}", rep.violations);
        assert!(rep.checks > 0);
    }

    #[test]
    fn refinement_rejects_phantom_edge() {
        let p = loop_program();
        let summary = StaticSummary::analyze(&p);
        // body→header is not a static successor (body jumps to the latch).
        let s = dyn_structure(&p, &[(0, 1), (1, 2), (2, 1)]);
        let rep = lint_ddg(
            &p,
            &summary,
            &FoldedDdg::default(),
            &ContextInterner::new(),
            &s,
        );
        assert!(!rep.ok());
        assert!(rep
            .violations
            .iter()
            .any(|v| v.kind == LintKind::ForestRefinement));
    }

    #[test]
    fn empty_fold_passes_vacuously() {
        let p = loop_program();
        let summary = StaticSummary::analyze(&p);
        let s = StaticStructure::default();
        let rep = lint_ddg(
            &p,
            &summary,
            &FoldedDdg::default(),
            &ContextInterner::new(),
            &s,
        );
        assert!(rep.ok());
    }
}
