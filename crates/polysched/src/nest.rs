//! The loop-nest forest over folded statements.
//!
//! Statements (context paths) sharing a context-prefix share loop
//! dimensions; this module groups them into a forest whose nodes are loop
//! *instances* (a loop reached through one specific calling context — the
//! interprocedural view the paper builds). Dimension `k` of a statement's
//! coordinate vector is controlled by the chain node at depth `k` (dimension
//! 0 is the loop-free root).

use polyfold::FoldedDdg;
use polyiiv::context::{ContextInterner, StmtId};
use polyiiv::CtxElem;
use std::collections::HashMap;

/// One node of the nest forest.
#[derive(Debug, Clone)]
pub struct NestNode {
    /// Parent node (None only for the root).
    pub parent: Option<usize>,
    /// Child loops.
    pub children: Vec<usize>,
    /// Coordinate dimension this node controls (root = 0, loops ≥ 1).
    pub dim: usize,
    /// The loop context element that opened this dimension (None for root).
    pub label: Option<CtxElem>,
    /// Statements whose *innermost* enclosing node is this one.
    pub stmts: Vec<StmtId>,
    /// All statements anywhere under this node (subtree).
    pub all_stmts: Vec<StmtId>,
    /// Dynamic operations in the subtree.
    pub ops: u64,
}

/// The loop-nest forest (node 0 is the synthetic root).
#[derive(Debug, Clone)]
pub struct NestForest {
    /// All nodes.
    pub nodes: Vec<NestNode>,
    /// For each statement: its chain of enclosing nodes, outermost (root)
    /// first — length = statement depth.
    pub chain_of: HashMap<StmtId, Vec<usize>>,
}

impl NestForest {
    /// Build the forest from a folded DDG.
    pub fn build(ddg: &FoldedDdg, interner: &ContextInterner) -> NestForest {
        let mut nodes = vec![NestNode {
            parent: None,
            children: Vec::new(),
            dim: 0,
            label: None,
            stmts: Vec::new(),
            all_stmts: Vec::new(),
            ops: 0,
        }];
        let mut index: HashMap<Vec<Vec<CtxElem>>, usize> = HashMap::new();
        let mut chain_of = HashMap::new();

        let mut stmt_ids: Vec<StmtId> = ddg.stmts.keys().copied().collect();
        stmt_ids.sort();
        for stmt in stmt_ids {
            let info = interner.stmt_info(stmt);
            let path = interner.path(info.path);
            let depth = path.len();
            let ops = ddg.stmts[&stmt].domain.count;
            let mut chain = vec![0usize];
            let mut cur = 0usize;
            nodes[0].ops += ops;
            nodes[0].all_stmts.push(stmt);
            // Loop at dim k is keyed by the first k context stacks.
            for k in 1..depth {
                let key: Vec<Vec<CtxElem>> = path[..k].to_vec();
                let node = match index.get(&key) {
                    Some(&n) => n,
                    None => {
                        let n = nodes.len();
                        // The loop element is the last entry of stack k-1.
                        let label = key[k - 1].last().copied();
                        nodes.push(NestNode {
                            parent: Some(cur),
                            children: Vec::new(),
                            dim: k,
                            label,
                            stmts: Vec::new(),
                            all_stmts: Vec::new(),
                            ops: 0,
                        });
                        nodes[cur].children.push(n);
                        index.insert(key, n);
                        n
                    }
                };
                nodes[node].ops += ops;
                nodes[node].all_stmts.push(stmt);
                chain.push(node);
                cur = node;
            }
            nodes[cur].stmts.push(stmt);
            chain_of.insert(stmt, chain);
        }
        NestForest { nodes, chain_of }
    }

    /// Root node index.
    pub fn root(&self) -> usize {
        0
    }

    /// Node accessor.
    pub fn node(&self, i: usize) -> &NestNode {
        &self.nodes[i]
    }

    /// Number of shared chain nodes between two statements (≥ 1: the root).
    pub fn shared_depth(&self, a: StmtId, b: StmtId) -> usize {
        let ca = &self.chain_of[&a];
        let cb = &self.chain_of[&b];
        ca.iter().zip(cb).take_while(|(x, y)| x == y).count()
    }

    /// Maximum loop depth in the forest (0 = no loops).
    pub fn max_loop_depth(&self) -> usize {
        self.nodes.iter().map(|n| n.dim).max().unwrap_or(0)
    }

    /// Top-level loop nests (children of the root), heaviest first.
    pub fn top_nests(&self) -> Vec<usize> {
        let mut v = self.nodes[0].children.clone();
        v.sort_by_key(|&n| std::cmp::Reverse(self.nodes[n].ops));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyfold::fold_program;
    use polyir::build::ProgramBuilder;
    use polyir::IBinOp;

    #[test]
    fn two_level_nest_forest() {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.func("main", 0);
        let acc = f.const_i(0);
        f.for_loop("Li", 0i64, 4i64, 1, |f, i| {
            f.for_loop("Lj", 0i64, 4i64, 1, |f, j| {
                let v = f.mul(i, j);
                f.iop_to(acc, IBinOp::Add, acc, v);
            });
        });
        f.ret(Some(acc.into()));
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (ddg, interner, _) = fold_program(&p);
        let forest = NestForest::build(&ddg, &interner);
        assert_eq!(forest.max_loop_depth(), 2);
        // root has exactly one top-level nest, which has one child
        let tops = forest.top_nests();
        assert_eq!(tops.len(), 1);
        assert_eq!(forest.node(tops[0]).dim, 1);
        assert_eq!(forest.node(tops[0]).children.len(), 1);
        let inner = forest.node(tops[0]).children[0];
        assert_eq!(forest.node(inner).dim, 2);
        // inner loop holds the multiply+add statements
        assert!(!forest.node(inner).stmts.is_empty());
        // ops accumulate upward
        assert!(forest.node(tops[0]).ops >= forest.node(inner).ops);
    }

    #[test]
    fn sequential_nests_are_siblings() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.alloc(16);
        let mut f = pb.func("main", 0);
        f.for_loop("L1", 0i64, 4i64, 1, |f, i| {
            f.store(a as i64, i, i);
        });
        f.for_loop("L2", 0i64, 4i64, 1, |f, i| {
            f.load(a as i64, i);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (ddg, interner, _) = fold_program(&p);
        let forest = NestForest::build(&ddg, &interner);
        assert_eq!(forest.top_nests().len(), 2);
    }

    #[test]
    fn interprocedural_chain_includes_callee_loops() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.alloc(64);
        let mut g = pb.func("inner", 1);
        let base = g.param(0);
        g.for_loop("Lj", 0i64, 4i64, 1, |g, j| {
            g.store(base, j, j);
        });
        g.ret(None);
        let g_id = g.finish();
        let mut f = pb.func("main", 0);
        f.for_loop("Li", 0i64, 4i64, 1, |f, i| {
            let row = f.mul(i, 4i64);
            let p = f.add(a as i64, row);
            f.call_void(g_id, &[p.into()]);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (ddg, interner, _) = fold_program(&p);
        let forest = NestForest::build(&ddg, &interner);
        // the interprocedural 2-D nest is visible: max depth 2
        assert_eq!(forest.max_loop_depth(), 2);
        // the store in the callee sits at depth 2 under main's loop
        let store_chain = forest
            .chain_of
            .iter()
            .find(|(s, _)| {
                matches!(
                    p.instr(interner.stmt_info(**s).instr),
                    polyir::Instr::Store { .. }
                )
            })
            .map(|(_, c)| c.clone())
            .expect("store statement present");
        assert_eq!(store_chain.len(), 3); // root + Li + Lj
    }

    #[test]
    fn shared_depth_between_stmts() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.alloc(16);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 4i64, 1, |f, i| {
            f.store(a as i64, i, i);
            f.load(a as i64, i);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (ddg, interner, _) = fold_program(&p);
        let forest = NestForest::build(&ddg, &interner);
        let mut mem_stmts: Vec<StmtId> = ddg
            .stmts
            .keys()
            .copied()
            .filter(|s| p.instr(interner.stmt_info(*s).instr).is_mem())
            .collect();
        mem_stmts.sort();
        assert_eq!(mem_stmts.len(), 2);
        assert_eq!(forest.shared_depth(mem_stmts[0], mem_stmts[1]), 2); // root + L
    }
}
