//! Dependence distance analysis over folded dependence relations.
//!
//! Every folded dependence carries the consumer's iteration domain and an
//! affine map to the producer's coordinates; the *distance* at a shared loop
//! dimension `j` is the affine form `x_j − src_map_j(x)`, bounded exactly
//! over the (rational relaxation of the) domain with `polylib`. The carried
//! level — the first dimension with a non-zero distance — is what every
//! legality question (parallelism, permutability, fusion) reduces to.

use crate::nest::NestForest;
use polyddg::DepKind;
use polyfold::{FoldedDdg, LabelFold, RatAffine};
use polyiiv::context::StmtId;
use polylib::{AffineExpr, Bound, Polyhedron, Rat};

/// Bounds of one distance component over the dependence domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistRange {
    /// Minimum (None = unbounded below).
    pub min: Option<Rat>,
    /// Maximum (None = unbounded above).
    pub max: Option<Rat>,
}

impl DistRange {
    /// Distance is exactly zero everywhere.
    pub fn is_zero(&self) -> bool {
        self.min == Some(Rat::ZERO) && self.max == Some(Rat::ZERO)
    }

    /// Distance is provably non-negative.
    pub fn is_nonneg(&self) -> bool {
        matches!(self.min, Some(m) if m >= Rat::ZERO)
    }
}

/// Where a dependence is carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Carried {
    /// Distance is zero at every shared dimension (intra-iteration).
    LoopIndependent,
    /// First non-zero distance at this coordinate dimension (1-based).
    Level(usize),
    /// The producer map is not affine: conservatively carried everywhere.
    Unknown,
}

/// One analyzed dependence.
#[derive(Debug, Clone)]
pub struct DepDist {
    /// Index into `FoldedDdg::deps`.
    pub dep_idx: usize,
    /// Producer statement.
    pub src: StmtId,
    /// Consumer statement.
    pub dst: StmtId,
    /// Kind.
    pub kind: DepKind,
    /// Number of shared loop dimensions (coordinate dims `1..=shared`).
    pub shared: usize,
    /// Distance ranges for every comparable dim (index 0 ↔ dim 1; may
    /// extend beyond `shared` for positional/fusion distances); empty when
    /// the producer map is non-affine.
    pub dist: Vec<DistRange>,
    /// Carried classification.
    pub carried: Carried,
    /// Dynamic instances.
    pub count: u64,
}

impl DepDist {
    /// Distance range at coordinate dim `d` (1-based); None if unknown.
    pub fn dist_at(&self, d: usize) -> Option<DistRange> {
        self.dist.get(d.checked_sub(1)?).copied()
    }
}

/// Bound `x_d − f(x)` over `domain`, where `f` has rational coefficients:
/// scale by the coefficient LCM so polylib sees integers, then divide back.
fn bound_distance(domain: &Polyhedron, d: usize, f: &RatAffine) -> DistRange {
    let dim = domain.dim();
    // LCM of denominators.
    let mut l: i128 = 1;
    for c in f.coeffs.iter().chain(std::iter::once(&f.c)) {
        let den = c.den();
        let g = polylib::rat::gcd(l, den);
        l = l / g * den;
    }
    // e = L·x_d − L·f(x)
    let mut coeffs = vec![0i64; dim];
    coeffs[d] += l as i64;
    for (i, c) in f.coeffs.iter().enumerate() {
        if i < dim {
            coeffs[i] -= (c.num() * l / c.den()) as i64;
        }
    }
    let e = AffineExpr::new(coeffs, -((f.c.num() * l / f.c.den()) as i64));
    let min = match domain.min_of(&e) {
        Bound::Finite(r) => Some(r / Rat::int(l)),
        Bound::Empty => Some(Rat::ZERO),
        Bound::Unbounded => None,
    };
    let max = match domain.max_of(&e) {
        Bound::Finite(r) => Some(r / Rat::int(l)),
        Bound::Empty => Some(Rat::ZERO),
        Bound::Unbounded => None,
    };
    DistRange { min, max }
}

/// Analyze every dependence of the folded DDG against the nest forest.
pub fn compute_distances(ddg: &FoldedDdg, forest: &NestForest) -> Vec<DepDist> {
    let mut out = Vec::with_capacity(ddg.deps.len());
    for (idx, dep) in ddg.deps.iter().enumerate() {
        // Statements removed by the SCEV filter may still appear if the
        // caller skipped remove_scevs(); guard against missing chains.
        let (Some(sc), Some(dc)) = (forest.chain_of.get(&dep.src), forest.chain_of.get(&dep.dst))
        else {
            continue;
        };
        let shared_nodes = sc.iter().zip(dc).take_while(|(a, b)| a == b).count();
        let shared = shared_nodes.saturating_sub(1); // minus the root
        let (dist, carried) = match &dep.src_map {
            LabelFold::Affine(fs) => {
                // Distances are computable for every dimension where both
                // the consumer domain and the producer map have a
                // coordinate — beyond the *shared* dims this is the
                // positional distance used by the fusion legality check.
                let nd = dep.domain.poly.dim().min(fs.len());
                let mut dist = Vec::with_capacity(nd.saturating_sub(1));
                for (d, f) in fs.iter().enumerate().take(nd).skip(1) {
                    // Producer coordinate dim d is component d of the map
                    // (component 0 is the root dimension).
                    dist.push(bound_distance(&dep.domain.poly, d, f));
                }
                let mut carried = Carried::LoopIndependent;
                for (i, r) in dist.iter().take(shared).enumerate() {
                    if !r.is_zero() {
                        carried = Carried::Level(i + 1);
                        break;
                    }
                }
                (dist, carried)
            }
            _ if dep.delta.len() > 1 => {
                // Non-affine producer map: fall back to the *observed*
                // per-dimension distance ranges. These are facts of the
                // profiled execution (the paper's tool reasons about one
                // run), and the carried-class stream split guarantees each
                // folded relation has one well-defined carried level.
                let dist: Vec<DistRange> = dep.delta[1..]
                    .iter()
                    .map(|&(lo, hi)| DistRange {
                        min: Some(Rat::int(lo as i128)),
                        max: Some(Rat::int(hi as i128)),
                    })
                    .collect();
                let mut carried = Carried::LoopIndependent;
                for (i, r) in dist.iter().take(shared).enumerate() {
                    if !r.is_zero() {
                        carried = Carried::Level(i + 1);
                        break;
                    }
                }
                (dist, carried)
            }
            _ => (
                Vec::new(),
                if shared > 0 {
                    Carried::Unknown
                } else {
                    Carried::LoopIndependent
                },
            ),
        };
        out.push(DepDist {
            dep_idx: idx,
            src: dep.src,
            dst: dep.dst,
            kind: dep.kind,
            shared,
            dist,
            carried,
            count: dep.domain.count,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::NestForest;
    use polyfold::fold_program;
    use polyir::build::ProgramBuilder;

    fn analyzed(p: &polyir::Program) -> (Vec<DepDist>, polyfold::FoldedDdg) {
        let (mut ddg, interner, _) = fold_program(p);
        ddg.remove_scevs();
        let forest = NestForest::build(&ddg, &interner);
        let dists = compute_distances(&ddg, &forest);
        (dists, ddg)
    }

    /// a[i+1] = a[i] + 1: distance exactly 1 at the loop dim; carried there.
    #[test]
    fn unit_distance_carried() {
        let mut pb = ProgramBuilder::new("t");
        let base = pb.alloc(64);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 8i64, 1, |f, i| {
            let prev = f.load(base as i64, i);
            let v = f.add(prev, 1i64);
            let i1 = f.add(i, 1i64);
            f.store(base as i64, i1, v);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (dists, _) = analyzed(&p);
        let carried: Vec<_> = dists
            .iter()
            .filter(|d| d.kind == DepKind::Flow && d.carried == Carried::Level(1))
            .collect();
        assert!(!carried.is_empty());
        let r = carried[0].dist_at(1).unwrap();
        assert_eq!(r.min, Some(Rat::ONE));
        assert_eq!(r.max, Some(Rat::ONE));
        assert!(r.is_nonneg() && !r.is_zero());
    }

    /// b[i] = a[i]; c[i] = b[i]: loop-independent flow (distance 0).
    #[test]
    fn loop_independent_dep() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array_f64(&[1.0; 8]);
        let b = pb.alloc(8);
        let c = pb.alloc(8);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 8i64, 1, |f, i| {
            let v = f.load(a as i64, i);
            f.store(b as i64, i, v);
            let w = f.load(b as i64, i);
            f.store(c as i64, i, w);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (dists, _) = analyzed(&p);
        let b_flow: Vec<_> = dists
            .iter()
            .filter(|d| d.kind == DepKind::Flow && d.count == 8)
            .collect();
        assert!(b_flow.iter().any(|d| d.carried == Carried::LoopIndependent));
    }

    /// Stencil b[i] = a[i-1] + a[i+1] over a separate output array: flows
    /// from the initialization loop share no loop → distance vector empty,
    /// loop-independent at the root.
    #[test]
    fn cross_nest_dep_has_no_shared_loop() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.alloc(16);
        let b = pb.alloc(16);
        let mut f = pb.func("main", 0);
        f.for_loop("Init", 0i64, 10i64, 1, |f, i| {
            f.store(a as i64, i, i);
        });
        f.for_loop("L", 1i64, 9i64, 1, |f, i| {
            let im = f.sub(i, 1i64);
            let ip = f.add(i, 1i64);
            let x = f.load(a as i64, im);
            let y = f.load(a as i64, ip);
            let s = f.add(x, y);
            f.store(b as i64, i, s);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (dists, _) = analyzed(&p);
        let cross: Vec<_> = dists
            .iter()
            .filter(|d| d.kind == DepKind::Flow && d.shared == 0)
            .collect();
        assert!(!cross.is_empty(), "init→stencil deps share no loop");
        assert!(cross.iter().all(|d| d.carried == Carried::LoopIndependent));
    }

    /// 2-D wavefront a[i][j] = a[i-1][j] + a[i][j-1]: two flow deps with
    /// distance vectors (1,0) and (0,1).
    #[test]
    fn wavefront_distance_vectors() {
        let n = 6i64;
        let mut pb = ProgramBuilder::new("t");
        let a = pb.alloc((n * n) as u64 + 64);
        let mut f = pb.func("main", 0);
        f.for_loop("Li", 1i64, n, 1, |f, i| {
            f.for_loop("Lj", 1i64, n, 1, |f, j| {
                let row = f.mul(i, n);
                let idx = f.add(row, j);
                let up = f.sub(idx, n);
                let left = f.sub(idx, 1i64);
                let x = f.load(a as i64, up);
                let y = f.load(a as i64, left);
                let s = f.add(x, y);
                f.store(a as i64, idx, s);
            });
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (dists, _) = analyzed(&p);
        let mut saw_10 = false;
        let mut saw_01 = false;
        for d in dists
            .iter()
            .filter(|d| d.kind == DepKind::Flow && d.shared == 2)
        {
            let r1 = d.dist_at(1).unwrap();
            let r2 = d.dist_at(2).unwrap();
            if r1.min == Some(Rat::ONE) && r1.max == Some(Rat::ONE) && r2.is_zero() {
                saw_10 = true;
            }
            if r1.is_zero() && r2.min == Some(Rat::ONE) && r2.max == Some(Rat::ONE) {
                saw_01 = true;
            }
        }
        assert!(saw_10, "(1,0) dependence expected");
        assert!(saw_01, "(0,1) dependence expected");
    }

    /// Indirect writes (a[p[i]] = …) with *irregular* reuse distances give
    /// non-affine producer maps → Carried::Unknown. (A periodic index
    /// pattern would fold to an affine map — correctly! — so the pattern
    /// here is i²·mod-like and aperiodic.)
    #[test]
    fn indirection_is_unknown_carried() {
        let mut pb = ProgramBuilder::new("t");
        let pattern: Vec<i64> = (0..16).map(|i: i64| (i * i) % 7).collect();
        let idx = pb.array_i64(&pattern);
        let a = pb.alloc(8);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 16i64, 1, |f, i| {
            let k = f.load(idx as i64, i);
            let v = f.load(a as i64, k);
            let v1 = f.add(v, 1i64);
            f.store(a as i64, k, v1);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (dists, ddg) = analyzed(&p);
        // The producer maps are non-affine (Range), but the carried-class
        // split plus observed delta ranges still pin down where each folded
        // relation is carried — no dependence needs to stay Unknown, yet
        // none of them may claim an exact affine map.
        let irregular: Vec<_> = dists
            .iter()
            .filter(|d| {
                matches!(ddg.deps[d.dep_idx].src_map, polyfold::LabelFold::Range(_)) && d.shared > 0
            })
            .collect();
        assert!(!irregular.is_empty(), "irregular deps must exist");
        for d in &irregular {
            assert!(
                matches!(d.carried, Carried::Level(_)),
                "carried level must be pinned by the class split: {:?}",
                d.carried
            );
            // and the observed range at the carried level must be non-zero
            let Carried::Level(l) = d.carried else {
                unreachable!()
            };
            let r = d.dist_at(l).unwrap();
            assert!(!r.is_zero());
        }
    }
}
