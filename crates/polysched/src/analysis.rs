//! Structured-transformation analysis — the Pluto-style reasoning of the
//! paper's stage 4: per-loop parallelism, permutable bands (tilability),
//! skew detection, and fusion structure.

use crate::deps::{Carried, DepDist};
use crate::nest::NestForest;
use polyfold::FoldedDdg;
use polyiiv::context::StmtId;
use polylib::Rat;
use std::collections::HashMap;

/// Per-loop-node legality summary.
#[derive(Debug, Clone, Default)]
pub struct NodeInfo {
    /// Dependences whose shared chain includes this node (indices into the
    /// analysis' dep list).
    pub deps: Vec<usize>,
    /// No dependence is carried at this node's dimension → the loop is
    /// parallel in place (`OMP PARALLEL DO` legal).
    pub parallel: bool,
    /// Every dependence under this node has distance exactly 0 at this
    /// dimension → the loop can be moved anywhere in its band, including
    /// innermost (SIMD) or outermost (coarse parallel).
    pub zero_dist: bool,
    /// Number of dependences carried exactly here.
    pub carried_here: usize,
}

/// A permutable band found in a nest chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Band {
    /// First coordinate dimension of the band (1-based).
    pub start: usize,
    /// Number of consecutive permutable dimensions.
    pub len: usize,
    /// True if skewing was required to make the band permutable.
    pub skewed: bool,
}

/// Fusion heuristic (paper Table 5, `fusion` column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionHeuristic {
    /// Maximal fusion: fuse whenever legal.
    Max,
    /// Smartfuse: fuse only when there is reuse (a dependence) between the
    /// components, balancing locality and parallelism.
    Smart,
}

/// The complete scheduler analysis of one folded DDG.
#[derive(Debug)]
pub struct Analysis {
    /// The nest forest.
    pub forest: NestForest,
    /// Analyzed dependences.
    pub deps: Vec<DepDist>,
    /// Per-node info, indexed like `forest.nodes`.
    pub node: Vec<NodeInfo>,
}

impl Analysis {
    /// Run the analysis. Call after `ddg.remove_scevs()` for the paper's
    /// pipeline (SCEV chains otherwise serialize everything).
    pub fn analyze(ddg: &FoldedDdg, interner: &polyiiv::context::ContextInterner) -> Analysis {
        let forest = NestForest::build(ddg, interner);
        let deps = crate::deps::compute_distances(ddg, &forest);
        let mut node: Vec<NodeInfo> = forest
            .nodes
            .iter()
            .map(|_| NodeInfo {
                parallel: true,
                zero_dist: true,
                ..Default::default()
            })
            .collect();
        for (di, d) in deps.iter().enumerate() {
            let chain = &forest.chain_of[&d.dst]; // shared prefix == src's
            for (dim, &n) in chain.iter().enumerate().take(d.shared + 1).skip(1) {
                node[n].deps.push(di);
                match d.carried {
                    Carried::Unknown => {
                        node[n].parallel = false;
                        node[n].zero_dist = false;
                        node[n].carried_here += 1;
                    }
                    Carried::LoopIndependent => {}
                    Carried::Level(l) => {
                        if l == dim {
                            node[n].parallel = false;
                            node[n].carried_here += 1;
                        }
                        if !d.dist[dim - 1].is_zero() {
                            node[n].zero_dist = false;
                        }
                    }
                }
            }
        }
        Analysis { forest, deps, node }
    }

    /// All root-to-leaf loop chains (each as node indices, starting at the
    /// first loop, dim 1).
    pub fn leaf_chains(&self) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut stack = vec![(self.forest.root(), Vec::new())];
        while let Some((n, chain)) = stack.pop() {
            let node = self.forest.node(n);
            let mut chain = chain;
            if n != self.forest.root() {
                chain.push(n);
            }
            if node.children.is_empty() {
                if !chain.is_empty() {
                    out.push(chain);
                }
            } else {
                for &c in &node.children {
                    stack.push((c, chain.clone()));
                }
                // A loop with both direct statements and children is also a
                // leaf position for its own statements.
                if !node.stmts.is_empty() && !chain.is_empty() {
                    out.push(chain);
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Maximal permutable band starting at `chain[start_idx]`, with skew
    /// detection: a negative distance at a candidate dimension can be fixed
    /// by skewing against a band dimension carrying the dependence with
    /// distance ≥ 1.
    pub fn band(&self, chain: &[usize], start_idx: usize) -> Band {
        self.band_with(chain, start_idx, true)
    }

    /// As [`Analysis::band`], optionally forbidding skewing (used to honor
    /// the paper's "avoid skewing unless it really provides improvements"
    /// policy).
    pub fn band_with(&self, chain: &[usize], start_idx: usize, allow_skew: bool) -> Band {
        let start_dim = start_idx + 1; // chain[0] has dim 1
        let mut len = 0usize;
        let mut skewed = false;
        'extend: for j in start_idx..chain.len() {
            let cand_dim = j + 1;
            // Every dep attached to the band head whose carried level falls
            // inside [start_dim ..= cand_dim] must have non-negative (or
            // skew-fixable) distance at ALL dims in that window.
            for &di in &self.node[chain[start_idx]].deps {
                let d = &self.deps[di];
                let carried_level = match d.carried {
                    Carried::Unknown => {
                        if len == 0 {
                            // cannot even form a 1-loop band? A single loop
                            // is trivially a band; unknown deps just stop
                            // extension beyond it.
                            break;
                        }
                        break 'extend;
                    }
                    Carried::LoopIndependent => continue,
                    Carried::Level(l) => l,
                };
                if carried_level < start_dim || carried_level > cand_dim {
                    continue;
                }
                for t in start_dim..=cand_dim.min(d.shared) {
                    let r = match d.dist_at(t) {
                        Some(r) => r,
                        None => break 'extend,
                    };
                    if r.is_nonneg() {
                        continue;
                    }
                    // Try skewing: distance at t becomes d_t + σ·d_c for a
                    // band dim c with min distance ≥ 1.
                    let fixable = allow_skew
                        && (start_dim..=cand_dim.min(d.shared)).any(|c| {
                            c != t
                                && matches!(
                                    d.dist_at(c).and_then(|rc| rc.min),
                                    Some(m) if m >= Rat::ONE
                                )
                                && r.min.is_some()
                        });
                    if fixable {
                        skewed = true;
                    } else {
                        break 'extend;
                    }
                }
            }
            len = j - start_idx + 1;
        }
        Band {
            start: start_dim,
            len: len.max(1).min(chain.len() - start_idx),
            skewed,
        }
    }

    /// Statement-level: any enclosing loop parallel (in place or via
    /// permutation within its band) → OpenMP-parallelizable.
    pub fn stmt_parallelizable(&self, stmt: StmtId) -> bool {
        let Some(chain) = self.forest.chain_of.get(&stmt) else {
            return false;
        };
        chain
            .iter()
            .skip(1)
            .any(|&n| self.node[n].parallel || self.node[n].zero_dist)
    }

    /// Statement-level: can some parallel loop be made innermost (vectorizable)?
    /// True when the innermost loop is parallel in place or some loop in the
    /// innermost band has all-zero distances (movable innermost).
    pub fn stmt_simdizable(&self, stmt: StmtId) -> bool {
        let Some(chain) = self.forest.chain_of.get(&stmt) else {
            return false;
        };
        if chain.len() <= 1 {
            return false;
        }
        let loops = &chain[1..];
        let innermost = *loops.last().expect("non-empty");
        if self.node[innermost].parallel {
            return true;
        }
        // Find the innermost band and look for a zero-distance member.
        let band = self.innermost_band(loops);
        loops[band.start - 1..band.start - 1 + band.len]
            .iter()
            .any(|&n| self.node[n].zero_dist)
    }

    /// The maximal band ending at the innermost dimension of `loops`.
    pub fn innermost_band(&self, loops: &[usize]) -> Band {
        let mut best = Band {
            start: loops.len(),
            len: 1,
            skewed: false,
        };
        for s in (0..loops.len()).rev() {
            let b = self.band(loops, s);
            if s + b.len >= loops.len() {
                best = b;
            } else {
                break;
            }
        }
        best
    }

    /// Tiling analysis for one statement: the maximal permutable band of its
    /// chain (searching all start positions). Skewing is only used when no
    /// tilable (≥ 2-deep) band exists without it — the paper "tends to
    /// avoid skewing unless it really provides improvements".
    pub fn stmt_tile_band(&self, stmt: StmtId) -> Band {
        let Some(chain) = self.forest.chain_of.get(&stmt) else {
            return Band {
                start: 1,
                len: 0,
                skewed: false,
            };
        };
        if chain.len() <= 1 {
            return Band {
                start: 1,
                len: 0,
                skewed: false,
            };
        }
        let loops = &chain[1..];
        let mut best_noskew = Band {
            start: 1,
            len: 0,
            skewed: false,
        };
        for s in 0..loops.len() {
            let b = self.band_with(loops, s, false);
            if b.len > best_noskew.len {
                best_noskew = b;
            }
        }
        if best_noskew.len >= 2 {
            return best_noskew;
        }
        let mut best = best_noskew;
        for s in 0..loops.len() {
            let b = self.band_with(loops, s, true);
            if b.len > best.len {
                best = b;
            }
        }
        best
    }

    /// Fraction of dynamic operations that are parallelizable / SIMDizable /
    /// tilable (band ≥ 2): the paper's `%||ops`, `%simdops`, `%Tilops`.
    pub fn op_fractions(&self, ddg: &FoldedDdg) -> OpFractions {
        let mut total = 0u64;
        let mut par = 0u64;
        let mut simd = 0u64;
        let mut tile = 0u64;
        for (id, s) in &ddg.stmts {
            let w = s.domain.count;
            total += w;
            if self.stmt_parallelizable(*id) {
                par += w;
            }
            if self.stmt_simdizable(*id) {
                simd += w;
            }
            if self.stmt_tile_band(*id).len >= 2 {
                tile += w;
            }
        }
        let frac = |x: u64| {
            if total == 0 {
                0.0
            } else {
                x as f64 / total as f64
            }
        };
        OpFractions {
            parallel: frac(par),
            simd: frac(simd),
            tilable: frac(tile),
            total_ops: total,
        }
    }

    /// Whether any statement's best band needs skewing.
    pub fn any_skew(&self, ddg: &FoldedDdg) -> bool {
        ddg.stmts.keys().any(|&s| self.stmt_tile_band(s).skewed)
    }

    /// Maximum tile band length across statements, weighted by presence.
    pub fn max_tile_depth(&self, ddg: &FoldedDdg) -> usize {
        ddg.stmts
            .keys()
            .map(|&s| self.stmt_tile_band(s).len)
            .max()
            .unwrap_or(0)
    }

    /// Fusion components under `region` (a forest node): `C` = children
    /// holding ≥ `threshold` of the region's ops; returns (before, after)
    /// component counts for the given heuristic.
    pub fn fusion_components(
        &self,
        region: usize,
        threshold: f64,
        h: FusionHeuristic,
    ) -> (usize, usize) {
        let total = self.forest.node(region).ops.max(1);
        let heavy: Vec<usize> = self
            .forest
            .node(region)
            .children
            .iter()
            .copied()
            .filter(|&c| self.forest.node(c).ops as f64 / total as f64 >= threshold)
            .collect();
        let before = heavy.len();
        if heavy.len() <= 1 {
            return (before, before);
        }
        // Greedy left-to-right fusion of consecutive components.
        let mut after = 1usize;
        for w in heavy.windows(2) {
            if !self.fusible(w[0], w[1], h) {
                after += 1;
            }
        }
        (before, after)
    }

    /// Can sibling nests `a` (earlier) and `b` (later) be fused at their
    /// shared dimension?
    fn fusible(&self, a: usize, b: usize, h: FusionHeuristic) -> bool {
        let sa: std::collections::HashSet<StmtId> =
            self.forest.node(a).all_stmts.iter().copied().collect();
        let sb: std::collections::HashSet<StmtId> =
            self.forest.node(b).all_stmts.iter().copied().collect();
        let dim = self.forest.node(a).dim;
        let mut saw_dep = false;
        for d in &self.deps {
            let cross = sa.contains(&d.src) && sb.contains(&d.dst);
            if !cross {
                continue;
            }
            saw_dep = true;
            // After fusion the two dim-`dim` loops align: legal iff the
            // producer iteration never exceeds the consumer iteration,
            // i.e. the positional distance at `dim` is non-negative.
            let ok = matches!(d.dist_at(dim), Some(r) if r.is_nonneg());
            if !ok {
                return false;
            }
        }
        match h {
            FusionHeuristic::Max => true,
            FusionHeuristic::Smart => saw_dep,
        }
    }

    /// Per-node parallel flags as a map (for reporting).
    pub fn parallel_loops(&self) -> HashMap<usize, bool> {
        (0..self.node.len())
            .map(|n| (n, self.node[n].parallel))
            .collect()
    }
}

/// Aggregate operation fractions (paper Table 5 columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpFractions {
    /// `%||ops`.
    pub parallel: f64,
    /// `%simdops`.
    pub simd: f64,
    /// `%Tilops` (band ≥ 2).
    pub tilable: f64,
    /// Total dynamic ops considered.
    pub total_ops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzed(p: &polyir::Program) -> (Analysis, FoldedDdg) {
        let (mut ddg, interner, _) = polyfold::fold_program(p);
        ddg.remove_scevs();
        let a = Analysis::analyze(&ddg, &interner);
        (a, ddg)
    }

    fn two_nests_program() -> polyir::Program {
        use polyir::build::ProgramBuilder;
        let mut pb = ProgramBuilder::new("t");
        let a = pb.alloc(64);
        let b = pb.alloc(64);
        let mut f = pb.func("main", 0);
        f.for_loop("L1", 0i64, 8i64, 1, |f, i| {
            f.for_loop("L1j", 0i64, 4i64, 1, |f, j| {
                let row = f.mul(i, 4i64);
                let idx = f.add(row, j);
                f.store(a as i64, idx, i);
            });
        });
        f.for_loop("L2", 0i64, 32i64, 1, |f, i| {
            let v = f.load(a as i64, i);
            f.store(b as i64, i, v);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        pb.finish()
    }

    #[test]
    fn leaf_chains_cover_both_nests() {
        let p = two_nests_program();
        let (a, _) = analyzed(&p);
        let chains = a.leaf_chains();
        // one 2-deep chain (L1→L1j) and one 1-deep chain (L2)
        let depths: Vec<usize> = chains.iter().map(|c| c.len()).collect();
        assert!(depths.contains(&2), "{depths:?}");
        assert!(depths.contains(&1), "{depths:?}");
    }

    #[test]
    fn parallel_loops_map_is_total() {
        let p = two_nests_program();
        let (a, _) = analyzed(&p);
        let m = a.parallel_loops();
        assert_eq!(m.len(), a.forest.nodes.len());
        // every loop here is parallel (disjoint writes, aligned reads)
        for (&n, &par) in &m {
            if n != a.forest.root() {
                assert!(par, "node {n} unexpectedly serial");
            }
        }
    }

    #[test]
    fn fusion_threshold_filters_small_components() {
        let p = two_nests_program();
        let (a, _) = analyzed(&p);
        // with a 0% threshold both nests are components
        let (c_all, _) = a.fusion_components(a.forest.root(), 0.0, FusionHeuristic::Max);
        assert_eq!(c_all, 2);
        // with an impossible threshold none are
        let (c_none, after) = a.fusion_components(a.forest.root(), 2.0, FusionHeuristic::Max);
        assert_eq!(c_none, 0);
        assert_eq!(after, 0);
    }

    #[test]
    fn innermost_band_of_perfect_nest_is_full() {
        let p = two_nests_program();
        let (a, ddg) = analyzed(&p);
        // find a depth-2 statement and check its innermost band spans both
        let stmt = ddg
            .stmts
            .keys()
            .find(|s| a.forest.chain_of[s].len() == 3)
            .copied()
            .unwrap();
        let loops = &a.forest.chain_of[&stmt][1..];
        let band = a.innermost_band(loops);
        assert_eq!(band.len, 2);
        assert!(!band.skewed);
    }
}
