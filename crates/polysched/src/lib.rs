//! # polysched — Pluto-style structured-transformation analysis (paper §6)
//!
//! The PoCC/PluTo substitute: operating on the folded DDG, it derives the
//! properties the paper reports — per-loop parallelism, permutable bands
//! (tilability, with skew detection for wavefront codes like GemsFDTD),
//! SIMDizable inner loops, and the fusion/distribution structure — without
//! generating code, exactly as Poly-Prof uses its scheduler: to produce
//! *feedback*, not binaries.
//!
//! Pipeline:
//! 1. [`nest::NestForest`] groups folded statements into interprocedural
//!    loop nests keyed by context prefixes;
//! 2. [`deps::compute_distances`] bounds dependence distance vectors
//!    exactly over the folded domains (via `polylib`);
//! 3. [`analysis::Analysis`] answers the legality questions.

pub mod analysis;
pub mod deps;
pub mod nest;

pub use analysis::{Analysis, Band, FusionHeuristic, NodeInfo, OpFractions};
pub use deps::{Carried, DepDist, DistRange};
pub use nest::{NestForest, NestNode};

use polyfold::FoldedDdg;
use polyiiv::context::ContextInterner;

/// Convenience: fold a program, remove SCEVs, and analyze.
pub fn analyze_program(prog: &polyir::Program) -> (Analysis, FoldedDdg, ContextInterner) {
    let (mut ddg, interner, _) = polyfold::fold_program(prog);
    ddg.remove_scevs();
    let analysis = Analysis::analyze(&ddg, &interner);
    (analysis, ddg, interner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyir::build::ProgramBuilder;
    use polyir::FBinOp;

    /// The backprop `bpnn_layerforward` shape (paper Fig. 6 / Table 3
    /// L_layer): outer j over n2, inner k over n1, inner reduction into
    /// `sum`. Expected findings: outer loop parallel, inner loop NOT
    /// parallel (reduction), nest permutable → interchange possible.
    fn layerforward(n2: i64, n1: i64) -> polyir::Program {
        let mut pb = ProgramBuilder::new("layerforward");
        let conn = pb.array_f64(&vec![0.5; (n1 * n2 + n1 + n2 + 2) as usize]);
        let l1 = pb.array_f64(&vec![0.25; (n1 + 1) as usize]);
        let l2 = pb.alloc((n2 + 2) as u64);
        let mut f = pb.func("main", 0);
        f.for_loop("Lj", 0i64, n2, 1, |f, j| {
            let sum = f.const_f(0.0);
            f.for_loop("Lk", 0i64, n1, 1, |f, k| {
                let row = f.mul(k, n2);
                let idx = f.add(row, j);
                let w = f.load(conn as i64, idx); // conn[k][j]
                let x = f.load(l1 as i64, k); // l1[k]
                let prod = f.fmul(w, x);
                f.fop_to(sum, FBinOp::Add, sum, prod);
            });
            let sq = f.un(polyir::UnOp::Sigmoid, sum);
            f.store(l2 as i64, j, sq);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        pb.finish()
    }

    #[test]
    fn layerforward_outer_parallel_inner_reduction() {
        let p = layerforward(8, 16);
        let (a, ddg, _) = analyze_program(&p);
        let tops = a.forest.top_nests();
        assert_eq!(tops.len(), 1);
        let outer = tops[0];
        let inner = a.forest.node(outer).children[0];
        assert!(a.node[outer].parallel, "outer j loop carries nothing");
        assert!(
            !a.node[inner].parallel,
            "inner k loop is a reduction: carried register dependence"
        );
        // %||ops high (everything under a parallel loop). %simdops is also
        // high — not because the inner loop is parallel in place, but
        // because the j loop has all-zero distances and can be interchanged
        // innermost (the paper's interchange+SIMD suggestion for L_layer,
        // after scalar expansion of `sum`).
        let fr = a.op_fractions(&ddg);
        assert!(fr.parallel > 0.9, "%||ops = {}", fr.parallel);
        assert!(fr.simd > 0.9, "interchange exposes SIMD: {}", fr.simd);
    }

    /// Interchange legality: the layerforward nest is fully permutable —
    /// the reduction's dependence has distance (0,1) ≥ 0 in both dims.
    #[test]
    fn layerforward_nest_permutable() {
        let p = layerforward(8, 16);
        let (a, ddg, _) = analyze_program(&p);
        let depth2_stmt = ddg
            .stmts
            .keys()
            .find(|s| a.forest.chain_of[s].len() == 3)
            .copied()
            .expect("inner statement");
        let band = a.stmt_tile_band(depth2_stmt);
        assert_eq!(band.len, 2, "both loops form one permutable band");
        assert!(!band.skewed);
    }

    /// Independent elementwise kernel: everything parallel and SIMDizable.
    #[test]
    fn elementwise_fully_parallel() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array_f64(&[1.0; 64]);
        let b = pb.alloc(64);
        let mut f = pb.func("main", 0);
        f.for_loop("Li", 0i64, 8i64, 1, |f, i| {
            f.for_loop("Lj", 0i64, 8i64, 1, |f, j| {
                let row = f.mul(i, 8i64);
                let idx = f.add(row, j);
                let v = f.load(a as i64, idx);
                let w = f.fmul(v, 3.0f64);
                f.store(b as i64, idx, w);
            });
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (a, ddg, _) = analyze_program(&p);
        let fr = a.op_fractions(&ddg);
        assert!(fr.parallel > 0.9);
        assert!(fr.simd > 0.9);
        assert!(fr.tilable > 0.9);
        assert!(!a.any_skew(&ddg));
        assert_eq!(a.max_tile_depth(&ddg), 2);
    }

    /// Seidel-style wavefront a[i][j] += a[i-1][j] + a[i][j-1]: neither loop
    /// parallel in place, but the nest is permutable (distances (1,0),(0,1)
    /// are non-negative) → tilable, wavefront parallelism.
    #[test]
    fn wavefront_tilable_not_parallel() {
        let n = 8i64;
        let mut pb = ProgramBuilder::new("t");
        let a = pb.alloc((n * n) as u64 + 64);
        let mut f = pb.func("main", 0);
        f.for_loop("Li", 1i64, n, 1, |f, i| {
            f.for_loop("Lj", 1i64, n, 1, |f, j| {
                let row = f.mul(i, n);
                let idx = f.add(row, j);
                let up = f.sub(idx, n);
                let left = f.sub(idx, 1i64);
                let x = f.load(a as i64, up);
                let y = f.load(a as i64, left);
                let s = f.fadd(x, y);
                f.store(a as i64, idx, s);
            });
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (an, ddg, _) = analyze_program(&p);
        let tops = an.forest.top_nests();
        let outer = tops[0];
        let inner = an.forest.node(outer).children[0];
        assert!(!an.node[outer].parallel);
        assert!(!an.node[inner].parallel);
        // Permutable band of 2 without skewing (distances already ≥ 0).
        assert_eq!(an.max_tile_depth(&ddg), 2);
        let fr = an.op_fractions(&ddg);
        assert!(fr.tilable > 0.9, "%Tilops = {}", fr.tilable);
        assert!(fr.parallel < 0.1, "no loop is parallel in place");
    }

    /// Skewed stencil a[i][j] = a[i-1][j+1] + a[i-1][j]: distance vectors
    /// (1,-1) and (1,0) — the band needs skewing to become permutable.
    #[test]
    fn skew_detected_for_negative_distance() {
        let n = 8i64;
        let mut pb = ProgramBuilder::new("t");
        let a = pb.alloc((n * n + n) as u64 + 64);
        let mut f = pb.func("main", 0);
        f.for_loop("Li", 1i64, n, 1, |f, i| {
            f.for_loop("Lj", 0i64, n - 1, 1, |f, j| {
                let row = f.mul(i, n);
                let idx = f.add(row, j);
                let up_right = f.sub(idx, n - 1); // a[i-1][j+1]
                let up = f.sub(idx, n); // a[i-1][j]
                let x = f.load(a as i64, up_right);
                let y = f.load(a as i64, up);
                let s = f.fadd(x, y);
                f.store(a as i64, idx, s);
            });
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (an, ddg, _) = analyze_program(&p);
        // The 2-band must exist but require skewing.
        let best = ddg
            .stmts
            .keys()
            .map(|&s| an.stmt_tile_band(s))
            .max_by_key(|b| b.len)
            .unwrap();
        assert_eq!(best.len, 2);
        assert!(best.skewed, "negative j-distance requires a skew");
        assert!(an.any_skew(&ddg));
    }

    /// Fusion: producer loop then consumer loop over the same array with
    /// identical iteration spaces — smartfuse and maxfuse both fuse (2 → 1).
    #[test]
    fn fusion_of_producer_consumer_nests() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.alloc(32);
        let b = pb.alloc(32);
        let mut f = pb.func("main", 0);
        f.for_loop("L1", 0i64, 16i64, 1, |f, i| {
            f.store(a as i64, i, i);
        });
        f.for_loop("L2", 0i64, 16i64, 1, |f, i| {
            let v = f.load(a as i64, i);
            let w = f.add(v, 1i64);
            f.store(b as i64, i, w);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (an, _, _) = analyze_program(&p);
        let root = an.forest.root();
        let (c_before, c_after) = an.fusion_components(root, 0.05, FusionHeuristic::Smart);
        assert_eq!(c_before, 2);
        assert_eq!(c_after, 1, "identity-aligned producer/consumer fuse");
        let (_, c_max) = an.fusion_components(root, 0.05, FusionHeuristic::Max);
        assert_eq!(c_max, 1);
    }

    /// Anti-aligned consumer (reads a[N-1-i]) cannot fuse: backward distance.
    #[test]
    fn fusion_rejected_on_backward_distance() {
        let n = 16i64;
        let mut pb = ProgramBuilder::new("t");
        let a = pb.alloc(32);
        let b = pb.alloc(32);
        let mut f = pb.func("main", 0);
        f.for_loop("L1", 0i64, n, 1, |f, i| {
            f.store(a as i64, i, i);
        });
        f.for_loop("L2", 0i64, n, 1, |f, i| {
            let rev = f.sub(n - 1, i);
            let v = f.load(a as i64, rev);
            f.store(b as i64, i, v);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (an, _, _) = analyze_program(&p);
        let (c_before, c_after) =
            an.fusion_components(an.forest.root(), 0.05, FusionHeuristic::Max);
        assert_eq!(c_before, 2);
        assert_eq!(c_after, 2, "reversed access forbids fusion");
    }

    /// Independent nests: maxfuse fuses, smartfuse keeps them apart
    /// (no reuse between them).
    #[test]
    fn fusion_heuristics_differ_without_reuse() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.alloc(32);
        let b = pb.alloc(32);
        let mut f = pb.func("main", 0);
        f.for_loop("L1", 0i64, 16i64, 1, |f, i| {
            f.store(a as i64, i, i);
        });
        f.for_loop("L2", 0i64, 16i64, 1, |f, i| {
            f.store(b as i64, i, i);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (an, _, _) = analyze_program(&p);
        let (_, smart) = an.fusion_components(an.forest.root(), 0.05, FusionHeuristic::Smart);
        let (_, max) = an.fusion_components(an.forest.root(), 0.05, FusionHeuristic::Max);
        assert_eq!(smart, 2);
        assert_eq!(max, 1);
    }
}
