//! Adaptive fold executor: pick inline folding or K-shard pipelining by
//! *measuring*, not guessing.
//!
//! The staged pipeline (`pipeline.rs`) wins only when the folding work per
//! chunk outweighs what the pipeline charges per chunk: a bounded-channel
//! send/recv round-trip, a cache-cold replay of the chunk on another core,
//! and its pool recycle. On small folds (or a 1-CPU box) those overheads
//! made every pipelined K *slower* than the serial path. Rather than
//! hard-coding a threshold that rots with the hardware, [`decide`] runs a
//! one-shot calibration — fold a synthetic chunk in-thread, bounce the same
//! chunk across a real `sync_channel` to another thread — and compares the
//! two costs directly.
//!
//! The decision is made **once, before the run starts**. Switching K
//! mid-run is deliberately not attempted: shard routing is keyed by
//! statement id, and re-keying live folder state would break the
//! disjoint-key invariant that makes [`FoldedDdg::merge_parts`] byte-exact.
//! Whatever `decide` picks, the folded output is byte-identical — the knob
//! only chooses which executor folds it (the parity suite pins this).
//!
//! [`FoldedDdg::merge_parts`]: crate::FoldedDdg::merge_parts

use crate::{ChunkScratch, FoldOptions, FoldingSink};
use polyddg::chunk::EventChunk;
use polyiiv::context::StmtId;
use std::sync::mpsc::sync_channel;
use std::time::Instant;

/// What the calibration measured and what it chose. Returned by [`decide`]
/// so callers (and telemetry) can record *why* an executor was picked.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveDecision {
    /// Chosen folding shard count: `1` means fold inline on the profiling
    /// thread (serial executor), `k > 1` means the staged pipeline with `k`
    /// folding workers.
    pub fold_threads: usize,
    /// Measured fold cost of one calibration chunk, in nanoseconds.
    pub fold_ns_per_chunk: u64,
    /// Measured channel round-trip + handoff cost per chunk, in nanoseconds.
    pub chunk_overhead_ns: u64,
    /// Logical CPUs the decision saw.
    pub cpus: usize,
}

impl AdaptiveDecision {
    /// True when the pipeline executor was selected.
    pub fn pipelined(&self) -> bool {
        self.fold_threads > 1
    }
}

/// Number of events in the calibration chunk. Small enough that the whole
/// calibration stays well under a millisecond, large enough to amortize the
/// per-chunk sort in the batched folder.
const CAL_EVENTS: usize = 512;

/// Timed repetitions; the *minimum* over repetitions is used, which rejects
/// scheduler noise better than the mean on a loaded box.
const CAL_REPS: usize = 4;

/// The pipeline must beat the handoff by this factor before it is chosen:
/// the calibration chunk is folder-state-warm after rep 1, so the measured
/// fold cost flatters the pipeline. The factor also absorbs the resolver
/// thread the pipeline adds, which calibration does not model.
const SAFETY_FACTOR: u64 = 2;

/// Build a chunk with the hot-path event mix: per-statement points whose
/// values follow an affine stream (the common folding case) plus a block of
/// dependences between two statements.
fn calibration_chunk() -> EventChunk {
    let mut chunk = EventChunk::with_capacity(CAL_EVENTS);
    let s0 = StmtId(0);
    let s1 = StmtId(1);
    let s2 = StmtId(2);
    let n = CAL_EVENTS as i64;
    for i in 0..n / 2 {
        // Affine value stream: exercises the fit-and-verify fast path.
        chunk.push_point(s0, &[i / 8, i % 8], Some(3 * i + 7));
    }
    for i in 0..n / 4 {
        chunk.push_access(s1, &[i], (0x1000 + 8 * i) as u64, i % 2 == 0);
    }
    for i in 1..n / 4 {
        chunk.push_dep(polyddg::DepKind::Flow, s1, &[i - 1], s2, &[i]);
    }
    chunk
}

/// Fold the calibration chunk `CAL_REPS` times through a fresh sink and
/// return the cheapest repetition, in nanoseconds.
fn measure_fold_ns(options: FoldOptions) -> u64 {
    let chunk = calibration_chunk();
    let mut sink = FoldingSink::with_options(options);
    let mut scratch = ChunkScratch::default();
    let mut best = u64::MAX;
    for _ in 0..CAL_REPS {
        let t0 = Instant::now();
        sink.fold_chunk(&chunk, &mut scratch);
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best
}

/// Bounce the calibration chunk through a real bounded channel to another
/// thread and back, mirroring the pipeline's send → recv → recycle edge.
/// Returns the cheapest per-round-trip cost, in nanoseconds.
fn measure_overhead_ns() -> u64 {
    let (tx, rx) = sync_channel::<EventChunk>(2);
    let (back_tx, back_rx) = sync_channel::<EventChunk>(2);
    let echo = std::thread::spawn(move || {
        while let Ok(chunk) = rx.recv() {
            if back_tx.send(chunk).is_err() {
                break;
            }
        }
    });
    let mut chunk = calibration_chunk();
    let mut best = u64::MAX;
    for _ in 0..CAL_REPS {
        let t0 = Instant::now();
        tx.send(std::mem::take(&mut chunk)).expect("echo alive");
        chunk = back_rx.recv().expect("echo alive");
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    drop(tx);
    let _ = echo.join();
    best
}

/// Calibrate and choose the fold executor.
///
/// * `requested_k` — the shard count to use *if* pipelining pays off.
///   Values `<= 1` mean "pick one for me" (CPU count, capped at 8, minus
///   the two stage threads).
/// * `chunk_events` — the run's batching granularity; the measured costs
///   are scaled to it so a run with tiny chunks sees the per-chunk
///   overhead loom proportionally larger.
/// * `options` — folding options for the calibration sink (must match the
///   run so the fast-path knob is reflected in the measurement).
///
/// On a single-CPU machine this short-circuits to the inline executor
/// without measuring anything: extra threads cannot add throughput there.
pub fn decide(requested_k: usize, chunk_events: usize, options: FoldOptions) -> AdaptiveDecision {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cpus < 2 {
        return AdaptiveDecision {
            fold_threads: 1,
            fold_ns_per_chunk: 0,
            chunk_overhead_ns: 0,
            cpus,
        };
    }

    let fold_ns = measure_fold_ns(options);
    let overhead_ns = measure_overhead_ns();

    // Scale the measured fold cost from the calibration chunk to the run's
    // actual chunk size; the handoff cost is per chunk regardless of size.
    let scaled_fold_ns = fold_ns.saturating_mul(chunk_events.max(1) as u64) / CAL_EVENTS as u64;

    let pipelined = scaled_fold_ns > overhead_ns.saturating_mul(SAFETY_FACTOR);
    let fold_threads = if pipelined {
        if requested_k > 1 {
            requested_k
        } else {
            // Leave headroom for the producer and resolver stage threads.
            cpus.saturating_sub(2).clamp(2, 8)
        }
    } else {
        1
    };
    AdaptiveDecision {
        fold_threads,
        fold_ns_per_chunk: scaled_fold_ns,
        chunk_overhead_ns: overhead_ns,
        cpus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The decision is structurally valid whatever the hardware: inline on
    /// one CPU, and any pipelined choice keeps K within the configured cap.
    #[test]
    fn decision_is_well_formed() {
        let d = decide(0, 4096, FoldOptions::default());
        assert!(d.fold_threads >= 1);
        assert!(d.fold_threads <= 8.max(d.cpus));
        if d.cpus < 2 {
            assert_eq!(d.fold_threads, 1, "single CPU must fold inline");
        }
    }

    /// An explicit K is honored verbatim when the pipeline is chosen.
    #[test]
    fn requested_k_is_respected_when_pipelined() {
        let d = decide(3, 4096, FoldOptions::default());
        if d.pipelined() {
            assert_eq!(d.fold_threads, 3);
        } else {
            assert_eq!(d.fold_threads, 1);
        }
    }

    /// Calibration folds real events — the measured cost must be nonzero on
    /// a multi-CPU box (on 1 CPU the short-circuit reports zeros).
    #[test]
    fn calibration_measures_when_it_runs() {
        let d = decide(2, 4096, FoldOptions::default());
        if d.cpus >= 2 {
            assert!(d.fold_ns_per_chunk > 0);
            assert!(d.chunk_overhead_ns > 0);
        }
    }
}
