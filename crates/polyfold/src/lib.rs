//! # polyfold — compacting the DDG into polyhedra (paper §5)
//!
//! The third Poly-Prof stage: the per-context streams produced by `polyddg`
//! (instruction points, memory accesses, dependences) are *folded* into
//! unions of polyhedra plus affine label functions, with explicit
//! over-approximation flags for the non-affine parts. On top of the raw
//! fold, this crate implements:
//!
//! * **SCEV recognition** — statements whose produced values are affine in
//!   their IIV (loop-counter increments, address computations) are flagged
//!   and removed together with their dependence chains, exactly like the
//!   paper's I5/I8 example (§5, "SCEV recognition");
//! * **access-function folding** — addresses as affine functions of IVs,
//!   the basis of the strided-access (`%stride 0/1`) statistics;
//! * the Table 1 / Table 2 textual rendering of dependence streams and
//!   folded dependence relations.

pub mod adaptive;
pub mod fitter;
pub mod pipeline;
pub mod replay;
pub mod stream;

pub use fitter::{FitResult, OnlineAffineFitter, RatAffine};
pub use stream::{FoldedDomain, FoldedStream, LabelFold, StreamFolder};

use polyddg::{DepKind, FoldSink};
use polyiiv::context::{ContextInterner, StmtId};
use polyir::{Instr, Program};
use polyresist::{PolyProfError, ResourceBudget};
use std::collections::HashMap;
use std::sync::Arc;

/// A folded statement: its iteration domain plus the folded produced-value
/// function.
#[derive(Debug, Clone)]
pub struct FoldedStmt {
    /// The statement id (context + instruction).
    pub stmt: StmtId,
    /// Folded iteration domain.
    pub domain: FoldedDomain,
    /// Folded produced values (`LabelFold::Affine` ⇒ SCEV candidate).
    pub values: LabelFold,
    /// True once classified as a scalar-evolution statement.
    pub is_scev: bool,
}

/// A folded memory-access relation for one statement.
#[derive(Debug, Clone)]
pub struct FoldedAccess {
    /// The accessing statement.
    pub stmt: StmtId,
    /// Domain of accesses.
    pub domain: FoldedDomain,
    /// Folded address function (affine ⇒ strided access).
    pub addr: LabelFold,
    /// True for stores.
    pub is_write: bool,
}

impl FoldedAccess {
    /// The address stride along dimension `k`, if the access is affine.
    pub fn stride(&self, k: usize) -> Option<polylib::Rat> {
        match &self.addr {
            LabelFold::Affine(fs) => fs.first().map(|f| f.coeffs[k]),
            _ => None,
        }
    }
}

/// A folded dependence relation: dst domain + affine map to the producer.
///
/// Dependence streams are split by *carried class* — the index of the first
/// coordinate where producer and consumer differ — so piecewise-affine
/// dependences (e.g. boundary-clamped stencils) fold into a *union* of
/// relations, one per class, instead of one big over-approximation. This is
/// the practical form of the paper's union-of-polyhedra folding.
#[derive(Debug, Clone)]
pub struct FoldedDep {
    /// Dependence kind.
    pub kind: DepKind,
    /// Producer statement.
    pub src: StmtId,
    /// Consumer statement.
    pub dst: StmtId,
    /// Carried class: first coordinate index where producer and consumer
    /// coordinates differ (None = loop-independent instances).
    pub class: Option<usize>,
    /// Domain over the *consumer* coordinates.
    pub domain: FoldedDomain,
    /// Folded producer coordinates as functions of consumer coordinates.
    pub src_map: LabelFold,
    /// Observed per-dimension distance ranges `dst_c − src_c` (over the
    /// common coordinate prefix) — exact facts of this execution, usable
    /// even when the producer map is not affine.
    pub delta: Vec<(i64, i64)>,
}

impl FoldedDep {
    /// The affine source map, if exact.
    pub fn affine_src_map(&self) -> Option<&[RatAffine]> {
        match &self.src_map {
            LabelFold::Affine(fs) => Some(fs),
            _ => None,
        }
    }
}

/// The complete folded DDG.
#[derive(Debug, Default)]
pub struct FoldedDdg {
    /// Folded statements, indexed by statement id.
    pub stmts: HashMap<StmtId, FoldedStmt>,
    /// Folded dependences.
    pub deps: Vec<FoldedDep>,
    /// Folded accesses per statement.
    pub accesses: HashMap<StmtId, FoldedAccess>,
    /// Total dynamic operations folded.
    pub total_ops: u64,
    /// Dynamic ops of statements removed as SCEV/control overhead (these
    /// are affine by construction and still count toward `%Aff`).
    pub removed_affine_ops: u64,
}

impl FoldedDdg {
    /// Fraction of dynamic operations inside *exact* affine statement
    /// domains with affine-or-absent labels — the paper's `%Aff` metric.
    pub fn affine_fraction(&self) -> f64 {
        if self.total_ops == 0 {
            return 0.0;
        }
        let affine_ops: u64 = self
            .stmts
            .values()
            .filter(|s| {
                let access_affine = match self.accesses.get(&s.stmt) {
                    Some(a) => a.addr.is_affine(),
                    None => true,
                };
                s.domain.exact && !matches!(s.values, LabelFold::Range(_)) && access_affine
            })
            .map(|s| s.domain.count)
            .sum::<u64>()
            + self.removed_affine_ops;
        affine_ops as f64 / self.total_ops as f64
    }

    /// Statements currently classified as SCEV.
    pub fn scev_stmts(&self) -> Vec<StmtId> {
        self.stmts
            .values()
            .filter(|s| s.is_scev)
            .map(|s| s.stmt)
            .collect()
    }

    /// Remove SCEV statements and every dependence touching them (the
    /// paper's post-fold DDG cleanup). Returns (stmts removed, deps removed).
    pub fn remove_scevs(&mut self) -> (usize, usize) {
        let scev: std::collections::HashSet<StmtId> = self.scev_stmts().into_iter().collect();
        self.removed_affine_ops += self
            .stmts
            .values()
            .filter(|s| scev.contains(&s.stmt))
            .map(|s| s.domain.count)
            .sum::<u64>();
        let before = self.deps.len();
        self.deps
            .retain(|d| !scev.contains(&d.src) && !scev.contains(&d.dst));
        let deps_removed = before - self.deps.len();
        let stmts_before = self.stmts.len();
        self.stmts.retain(|id, _| !scev.contains(id));
        self.accesses.retain(|id, _| !scev.contains(id));
        (stmts_before - self.stmts.len(), deps_removed)
    }

    /// Number of *statements* after folding (what the polyhedral back-end
    /// actually has to schedule — the paper's scalability argument).
    pub fn n_stmts(&self) -> usize {
        self.stmts.len()
    }

    /// Number of folded statements left over-approximated: inexact domain,
    /// range-folded labels, or a non-affine access function. The telemetry
    /// layer reports this as `overapprox_stmts`.
    pub fn overapprox_stmts(&self) -> usize {
        self.stmts
            .values()
            .filter(|s| {
                let access_affine = match self.accesses.get(&s.stmt) {
                    Some(a) => a.addr.is_affine(),
                    None => true,
                };
                !(s.domain.exact && !matches!(s.values, LabelFold::Range(_)) && access_affine)
            })
            .count()
    }

    /// Deterministically merge shard partials into one DDG.
    ///
    /// The pipeline shards by folding key (statement id; consumer id for
    /// dependences), so the partials own *disjoint* key sets and merging is
    /// a union, never a combination of two half-folded streams. The final
    /// dependence sort is over the full key `(kind, src, dst, class)` —
    /// unique per relation — so the result is independent of shard count
    /// and merge order, byte-identical to the serial sink's output.
    pub fn merge_parts(parts: impl IntoIterator<Item = FoldedDdg>) -> FoldedDdg {
        let mut out = FoldedDdg::default();
        for part in parts {
            out.total_ops += part.total_ops;
            out.removed_affine_ops += part.removed_affine_ops;
            for (id, s) in part.stmts {
                let prev = out.stmts.insert(id, s);
                debug_assert!(prev.is_none(), "statement {id:?} folded in two shards");
            }
            for (id, a) in part.accesses {
                let prev = out.accesses.insert(id, a);
                debug_assert!(prev.is_none(), "access {id:?} folded in two shards");
            }
            out.deps.extend(part.deps);
        }
        out.deps.sort_by_key(|d| (d.kind, d.src, d.dst, d.class));
        out
    }

    /// Deterministic byte rendering of the whole folded DDG: statements and
    /// accesses sorted by id, dependences in their canonical `(kind, src,
    /// dst, class)` order, totals last. Two DDGs are byte-identical here iff
    /// they fold the same facts — the record→replay identity gate and
    /// `refold --diff` compare exactly this text.
    pub fn canonical_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut stmt_ids: Vec<StmtId> = self.stmts.keys().copied().collect();
        stmt_ids.sort();
        for id in &stmt_ids {
            writeln!(out, "stmt {:?}", self.stmts[id]).expect("string write");
        }
        let mut acc_ids: Vec<StmtId> = self.accesses.keys().copied().collect();
        acc_ids.sort();
        for id in &acc_ids {
            writeln!(out, "access {:?}", self.accesses[id]).expect("string write");
        }
        let mut deps: Vec<&FoldedDep> = self.deps.iter().collect();
        deps.sort_by_key(|d| (d.kind, d.src, d.dst, d.class));
        for d in deps {
            writeln!(out, "dep {d:?}").expect("string write");
        }
        writeln!(
            out,
            "total_ops {} removed_affine_ops {}",
            self.total_ops, self.removed_affine_ops
        )
        .expect("string write");
        out
    }

    /// Merge shard partials where some shards may be missing (a folding
    /// worker died before emitting). Present parts merge exactly like
    /// [`merge_parts`](Self::merge_parts); the indices of absent parts are
    /// returned so the caller can record them in its degradation report.
    /// An all-`None` (or empty) input yields an empty DDG.
    pub fn merge_parts_tolerant(
        parts: impl IntoIterator<Item = Option<FoldedDdg>>,
    ) -> (FoldedDdg, Vec<usize>) {
        let mut missing = Vec::new();
        let mut present = Vec::new();
        for (i, p) in parts.into_iter().enumerate() {
            match p {
                Some(d) => present.push(d),
                None => missing.push(i),
            }
        }
        (Self::merge_parts(present), missing)
    }
}

/// Folding configuration (ablation knobs; defaults reproduce the paper's
/// pipeline).
#[derive(Debug, Clone, Copy)]
pub struct FoldOptions {
    /// Split dependence streams by carried class (union-of-relations
    /// folding). Disabling it folds each (kind, src, dst) into a single
    /// relation, which over-approximates piecewise-affine dependences — the
    /// ablation shows how much parallelism that costs.
    pub split_classes: bool,
    /// Verify fixed affine candidates with overflow-checked `i64`
    /// arithmetic, falling back to exact rationals on overflow. Disabling it
    /// forces the pure-rational verification path everywhere — the
    /// pre-optimization reference the differential tests and the
    /// with-folding benchmark baseline use.
    pub fast_fit: bool,
}

impl Default for FoldOptions {
    fn default() -> Self {
        FoldOptions {
            split_classes: true,
            fast_fit: true,
        }
    }
}

/// The folding sink: implements the `polyddg` folding interface, folding
/// each context's stream online.
///
/// Statement ids are dense (handed out in order by the interner), so
/// per-statement folders live in flat vectors indexed by `StmtId` — the
/// per-event folder lookup is an array index, not a hash probe. Dependence
/// streams key on `(kind, src, dst, class)`, resolved through a dense
/// per-consumer table: slot `dst.0` holds the (few) relations targeting
/// that statement, scanned linearly — no hashing, no MRU, and locality
/// follows the consumer id the router already shards by.
#[derive(Debug, Default)]
pub struct FoldingSink {
    /// Statement folders, indexed by `StmtId::0`.
    stmts: Vec<Option<StreamFolder>>,
    /// Access folders (+ is_write), indexed by `StmtId::0`.
    accesses: Vec<Option<(StreamFolder, bool)>>,
    /// Dependence folders + per-dimension distance ranges, appended in
    /// first-seen order; `dep_slots` maps keys to slots.
    deps: Vec<DepEntry>,
    /// Per-consumer dependence table, indexed by `dst.0`: each entry is
    /// `(kind, src, class, slot)` for one relation targeting that consumer.
    dep_slots: Vec<Vec<(DepKind, StmtId, u8, u32)>>,
    total_ops: u64,
    options: FoldOptions,
    stats: FoldStats,
    /// Optional resource budget: folder allocations are charged against it,
    /// and once it reports pressure every touched folder degrades to coarse
    /// (box + count) folding. `None` costs one branch per event.
    budget: Option<Arc<ResourceBudget>>,
}

/// Per-sink folding telemetry: plain fields on the hot path, harvested by
/// the owning stage into the run's `polytrace` collector.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FoldStats {
    /// Fold-interface events consumed (points + accesses + dependences).
    pub events_folded: u64,
    /// Dependence events consumed (subset of `events_folded`).
    pub deps_folded: u64,
    /// Whole event chunks folded through the batched path.
    pub chunks_folded: u64,
    /// Folders switched to coarse (box + count) folding under budget
    /// pressure.
    pub budget_degraded: u64,
}

impl FoldStats {
    /// Accumulate another sink's tally (merging shard statistics).
    pub fn merge(&mut self, other: &FoldStats) {
        self.events_folded += other.events_folded;
        self.deps_folded += other.deps_folded;
        self.chunks_folded += other.chunks_folded;
        self.budget_degraded += other.budget_degraded;
    }
}

/// Dependence stream key: kind, producer, consumer, carried class.
type DepKey = (DepKind, StmtId, StmtId, u8);

/// One dependence stream: key, folder, per-dimension distance ranges.
type DepEntry = (DepKey, StreamFolder, Vec<(i64, i64)>);

/// Carried-class tag for loop-independent dependences.
const CLASS_NONE: u8 = u8::MAX;

impl FoldingSink {
    /// Fresh sink with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh sink with explicit options (ablation studies).
    pub fn with_options(options: FoldOptions) -> Self {
        FoldingSink {
            options,
            ..Self::default()
        }
    }

    /// This sink's folding telemetry so far (read before `finalize`).
    pub fn fold_stats(&self) -> FoldStats {
        self.stats
    }

    /// Attach a resource budget. Folder allocations are charged against the
    /// byte limit; once the budget latches pressure, every folder touched
    /// afterwards degrades to coarse mode — the finalized domains stay
    /// supersets of the exact ones, flagged `exact = false`.
    pub fn set_budget(&mut self, budget: Arc<ResourceBudget>) {
        self.budget = Some(budget);
    }

    /// Rough per-folder heap cost charged against the budget.
    #[inline]
    fn folder_cost(dim: usize) -> u64 {
        (std::mem::size_of::<StreamFolder>() + dim * 2 * std::mem::size_of::<OnlineAffineFitter>())
            as u64
    }

    /// Degrade `folder` if the budget latched pressure; counts transitions.
    #[inline]
    fn maybe_degrade(
        budget: &Option<Arc<ResourceBudget>>,
        stats: &mut FoldStats,
        folder: &mut StreamFolder,
    ) {
        if let Some(b) = budget {
            if b.under_pressure() && !folder.is_coarse() {
                folder.degrade();
                stats.budget_degraded += 1;
            }
        }
    }

    /// Finalize all folders into a [`FoldedDdg`], classifying SCEVs using
    /// the program (only register-arithmetic instructions qualify).
    pub fn finalize(self, prog: &Program, interner: &ContextInterner) -> FoldedDdg {
        let mut out = FoldedDdg {
            total_ops: self.total_ops,
            ..Default::default()
        };
        let stmts = self
            .stmts
            .into_iter()
            .enumerate()
            .filter_map(|(i, f)| Some((StmtId(i as u32), f?)));
        for (stmt, folder) in stmts {
            let folded = folder.finalize();
            let instr = prog.instr(interner.stmt_info(stmt).instr);
            let scev_eligible = matches!(
                instr,
                Instr::Const { .. } | Instr::Move { .. } | Instr::IOp { .. }
            );
            // Compare instructions compute the branch predicate; their 0/1
            // value sequence is never affine, but the information it carries
            // (the loop bounds) is already captured by the folded domain —
            // they are loop-control overhead, removable like SCEVs.
            let is_cmp = matches!(instr, Instr::ICmp { .. } | Instr::FCmp { .. });
            // Classic scalar-evolution recurrences — `r = r ± const` — are
            // SCEVs along their loop even when the *global* value is only
            // piecewise affine (e.g. an IV starting at a data-dependent
            // lower bound). Their dependence chains are induction
            // bookkeeping and must be ignored (paper §5).
            let is_self_increment = matches!(
                instr,
                Instr::IOp {
                    dst,
                    op: polyir::IBinOp::Add | polyir::IBinOp::Sub,
                    a,
                    b,
                } if (*a == polyir::Operand::Reg(*dst)
                        && matches!(b, polyir::Operand::ImmI(_)))
                    || (*b == polyir::Operand::Reg(*dst)
                        && matches!(a, polyir::Operand::ImmI(_)))
            );
            let values = if is_cmp {
                LabelFold::None
            } else {
                folded.labels
            };
            let is_scev = is_cmp
                || is_self_increment
                || (folded.domain.exact && scev_eligible && values.is_affine());
            out.stmts.insert(
                stmt,
                FoldedStmt {
                    stmt,
                    domain: folded.domain,
                    values,
                    is_scev,
                },
            );
        }
        let accesses = self
            .accesses
            .into_iter()
            .enumerate()
            .filter_map(|(i, f)| Some((StmtId(i as u32), f?)));
        for (stmt, (folder, is_write)) in accesses {
            let folded = folder.finalize();
            out.accesses.insert(
                stmt,
                FoldedAccess {
                    stmt,
                    domain: folded.domain,
                    addr: folded.labels,
                    is_write,
                },
            );
        }
        for ((kind, src, dst, class), folder, delta) in self.deps {
            let folded = folder.finalize();
            out.deps.push(FoldedDep {
                kind,
                src,
                dst,
                class: if class == CLASS_NONE {
                    None
                } else {
                    Some(class as usize)
                },
                domain: folded.domain,
                src_map: folded.labels,
                delta,
            });
        }
        // Deterministic order for reporting.
        out.deps.sort_by_key(|d| (d.kind, d.src, d.dst, d.class));
        out
    }
}

impl FoldingSink {
    /// Dense per-statement slot, growing the table on first sight.
    #[inline]
    fn stmt_slot<T>(v: &mut Vec<Option<T>>, stmt: StmtId) -> &mut Option<T> {
        let idx = stmt.0 as usize;
        if idx >= v.len() {
            v.resize_with(idx + 1, || None);
        }
        &mut v[idx]
    }
}

/// Reusable scratch buffers for [`FoldingSink::fold_chunk`] — one per
/// folding worker, so the per-chunk grouping never allocates in steady
/// state.
#[derive(Debug, Default)]
pub struct ChunkScratch {
    /// `(group key, record index)` pairs, sorted stably per chunk.
    keys: Vec<(u64, u32)>,
}

/// Group-key tags: the low 2 bits of a key select the folder family, the
/// high bits carry the statement (or consumer) id.
const TAG_POINT: u64 = 0;
const TAG_ACCESS: u64 = 1;
const TAG_DEP: u64 = 2;

impl FoldingSink {
    /// Fold a whole fully-resolved chunk, batched: records are grouped by
    /// folding key (statement for points/accesses, consumer for
    /// dependences) with a stable sort, so folder state is located and
    /// borrowed once per (key, chunk) instead of once per event. Within a
    /// key the original event order is preserved, and keys never share
    /// folder state, so the folded result is byte-identical to
    /// [`EventChunk::replay_into`](polyddg::chunk::EventChunk::replay_into).
    ///
    /// Budgeted sinks fall back to in-order replay: budget degradation
    /// latches per *event-arrival* order, which grouping would perturb.
    pub fn fold_chunk(&mut self, chunk: &polyddg::chunk::EventChunk, scratch: &mut ChunkScratch) {
        use polyddg::chunk::EventRef;
        if self.budget.is_some() {
            chunk.replay_into(self);
            return;
        }
        self.stats.chunks_folded += 1;
        let keys = &mut scratch.keys;
        keys.clear();
        keys.reserve(chunk.len());
        for (i, ev) in chunk.events().enumerate() {
            let key = match ev {
                EventRef::Point { stmt, .. } => ((stmt.0 as u64) << 2) | TAG_POINT,
                EventRef::Access { stmt, .. } => ((stmt.0 as u64) << 2) | TAG_ACCESS,
                EventRef::Dep { dst, .. } => ((dst.0 as u64) << 2) | TAG_DEP,
                EventRef::MemPre { .. } => {
                    unreachable!("unresolved memory event reached a folding shard")
                }
            };
            keys.push((key, i as u32));
        }
        // Stable: events of one key keep their serial order.
        keys.sort_by_key(|&(k, _)| k);
        let fast_fit = self.options.fast_fit;
        let mut pos = 0;
        while pos < keys.len() {
            let key = keys[pos].0;
            let end = pos + keys[pos..].iter().take_while(|e| e.0 == key).count();
            let group = &keys[pos..end];
            match key & 3 {
                TAG_POINT => {
                    let stmt = StmtId((key >> 2) as u32);
                    let EventRef::Point { coords, .. } = chunk.event_at(group[0].1 as usize) else {
                        unreachable!()
                    };
                    let dim = coords.len();
                    let folder = Self::stmt_slot(&mut self.stmts, stmt)
                        .get_or_insert_with(|| StreamFolder::with_fast_fit(dim, fast_fit));
                    self.total_ops += group.len() as u64;
                    self.stats.events_folded += group.len() as u64;
                    for &(_, i) in group {
                        let EventRef::Point { coords, value, .. } = chunk.event_at(i as usize)
                        else {
                            unreachable!()
                        };
                        match value {
                            Some(v) => folder.push(coords, Some(&[v])),
                            None => folder.push(coords, None),
                        }
                    }
                }
                TAG_ACCESS => {
                    let stmt = StmtId((key >> 2) as u32);
                    let EventRef::Access {
                        coords, is_write, ..
                    } = chunk.event_at(group[0].1 as usize)
                    else {
                        unreachable!()
                    };
                    let dim = coords.len();
                    let (folder, _) =
                        Self::stmt_slot(&mut self.accesses, stmt).get_or_insert_with(|| {
                            (StreamFolder::with_fast_fit(dim, fast_fit), is_write)
                        });
                    self.stats.events_folded += group.len() as u64;
                    for &(_, i) in group {
                        let EventRef::Access { coords, addr, .. } = chunk.event_at(i as usize)
                        else {
                            unreachable!()
                        };
                        folder.push(coords, Some(&[addr as i64]));
                    }
                }
                _ => {
                    let dst = StmtId((key >> 2) as u32);
                    let idx = dst.0 as usize;
                    if idx >= self.dep_slots.len() {
                        self.dep_slots.resize_with(idx + 1, Vec::new);
                    }
                    self.stats.events_folded += group.len() as u64;
                    self.stats.deps_folded += group.len() as u64;
                    // Group-local MRU: consecutive events of one consumer
                    // overwhelmingly repeat the same (kind, src, class).
                    let mut last: Option<(DepKind, StmtId, u8, u32)> = None;
                    for &(_, i) in group {
                        let EventRef::Dep {
                            kind,
                            src,
                            src_coords,
                            dst_coords,
                            ..
                        } = chunk.event_at(i as usize)
                        else {
                            unreachable!()
                        };
                        let common = src_coords.len().min(dst_coords.len());
                        let class = if self.options.split_classes {
                            (0..common)
                                .find(|&i| src_coords[i] != dst_coords[i])
                                .map(|i| i as u8)
                                .unwrap_or(CLASS_NONE)
                        } else {
                            0
                        };
                        let slot = match last {
                            Some((k2, s2, c2, sl)) if k2 == kind && s2 == src && c2 == class => sl,
                            _ => {
                                let table = &mut self.dep_slots[idx];
                                match table
                                    .iter()
                                    .find(|e| e.0 == kind && e.1 == src && e.2 == class)
                                {
                                    Some(e) => e.3,
                                    None => {
                                        let slot = self.deps.len() as u32;
                                        self.deps.push((
                                            (kind, src, dst, class),
                                            StreamFolder::with_fast_fit(dst_coords.len(), fast_fit),
                                            vec![(i64::MAX, i64::MIN); common],
                                        ));
                                        self.dep_slots[idx].push((kind, src, class, slot));
                                        slot
                                    }
                                }
                            }
                        };
                        last = Some((kind, src, class, slot));
                        let (_, folder, delta) = &mut self.deps[slot as usize];
                        for (d, k) in delta.iter_mut().zip(0..common) {
                            let v = dst_coords[k] - src_coords[k];
                            d.0 = d.0.min(v);
                            d.1 = d.1.max(v);
                        }
                        folder.push(dst_coords, Some(src_coords));
                    }
                }
            }
            pos = end;
        }
    }
}

impl FoldSink for FoldingSink {
    fn instr_point(&mut self, stmt: StmtId, coords: &[i64], value: Option<i64>) {
        self.total_ops += 1;
        self.stats.events_folded += 1;
        let budget = &self.budget;
        let fast_fit = self.options.fast_fit;
        let folder = Self::stmt_slot(&mut self.stmts, stmt).get_or_insert_with(|| {
            if let Some(b) = budget {
                b.charge(Self::folder_cost(coords.len()));
            }
            StreamFolder::with_fast_fit(coords.len(), fast_fit)
        });
        Self::maybe_degrade(budget, &mut self.stats, folder);
        match value {
            Some(v) => folder.push(coords, Some(&[v])),
            None => folder.push(coords, None),
        }
    }

    fn mem_access(&mut self, stmt: StmtId, coords: &[i64], addr: u64, is_write: bool) {
        self.stats.events_folded += 1;
        let budget = &self.budget;
        let fast_fit = self.options.fast_fit;
        let (folder, _) = Self::stmt_slot(&mut self.accesses, stmt).get_or_insert_with(|| {
            if let Some(b) = budget {
                b.charge(Self::folder_cost(coords.len()));
            }
            (
                StreamFolder::with_fast_fit(coords.len(), fast_fit),
                is_write,
            )
        });
        Self::maybe_degrade(budget, &mut self.stats, folder);
        folder.push(coords, Some(&[addr as i64]));
    }

    fn dependence(
        &mut self,
        kind: DepKind,
        src: StmtId,
        src_coords: &[i64],
        dst: StmtId,
        dst_coords: &[i64],
    ) {
        self.stats.events_folded += 1;
        self.stats.deps_folded += 1;
        let common = src_coords.len().min(dst_coords.len());
        let class = if self.options.split_classes {
            (0..common)
                .find(|&i| src_coords[i] != dst_coords[i])
                .map(|i| i as u8)
                .unwrap_or(CLASS_NONE)
        } else {
            0
        };
        let idx = dst.0 as usize;
        if idx >= self.dep_slots.len() {
            self.dep_slots.resize_with(idx + 1, Vec::new);
        }
        let table = &mut self.dep_slots[idx];
        let slot = match table
            .iter()
            .find(|e| e.0 == kind && e.1 == src && e.2 == class)
        {
            Some(e) => e.3,
            None => {
                if let Some(b) = &self.budget {
                    b.charge(Self::folder_cost(dst_coords.len()));
                }
                let slot = self.deps.len() as u32;
                self.deps.push((
                    (kind, src, dst, class),
                    StreamFolder::with_fast_fit(dst_coords.len(), self.options.fast_fit),
                    vec![(i64::MAX, i64::MIN); common],
                ));
                table.push((kind, src, class, slot));
                slot
            }
        };
        let (_, folder, delta) = &mut self.deps[slot as usize];
        Self::maybe_degrade(&self.budget, &mut self.stats, folder);
        for (i, d) in delta.iter_mut().enumerate().take(common) {
            let v = dst_coords[i] - src_coords[i];
            d.0 = d.0.min(v);
            d.1 = d.1.max(v);
        }
        folder.push(dst_coords, Some(src_coords));
    }
}

/// Fold a whole program end-to-end: pass 1 (structure), pass 2 (DDG →
/// folding). Returns the folded DDG, the interner, and the structure.
/// Panics on a VM error — see [`try_fold_program`] for the fallible variant.
pub fn fold_program(prog: &Program) -> (FoldedDdg, ContextInterner, polycfg::StaticStructure) {
    match try_fold_program(prog) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`fold_program`]: VM errors in either pass surface
/// as [`PolyProfError::Vm`] instead of panics.
pub fn try_fold_program(
    prog: &Program,
) -> Result<(FoldedDdg, ContextInterner, polycfg::StaticStructure), PolyProfError> {
    let mut rec = polycfg::StructureRecorder::new();
    polyvm::Vm::new(prog)
        .run(&[], &mut rec)
        .map_err(|e| PolyProfError::Vm {
            stage: "pass-1",
            msg: e.to_string(),
        })?;
    let structure = polycfg::StaticStructure::analyze(prog, rec);
    let mut prof = polyddg::DdgProfiler::new(prog, &structure, FoldingSink::new());
    polyvm::Vm::new(prog)
        .run(&[], &mut prof)
        .map_err(|e| PolyProfError::Vm {
            stage: "pass-2",
            msg: e.to_string(),
        })?;
    let (sink, interner) = prof.finish();
    let ddg = sink.finalize(prog, &interner);
    Ok((ddg, interner, structure))
}

/// Render a folded dependence like the paper's Table 2 rows:
/// polyhedron + affine producer map.
pub fn display_dep(dep: &FoldedDep, dst_names: &[&str], src_names: &[&str]) -> String {
    let dom = dep.domain.poly.display(dst_names);
    let map = match &dep.src_map {
        LabelFold::Affine(fs) => fs
            .iter()
            .enumerate()
            .map(|(i, f)| {
                format!(
                    "{} = {}",
                    src_names.get(i).copied().unwrap_or("?"),
                    f.display(dst_names)
                )
            })
            .collect::<Vec<_>>()
            .join(", "),
        LabelFold::Range(rs) => format!("approx {rs:?}"),
        LabelFold::None => "-".into(),
    };
    format!("{dom}  {map}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyir::build::ProgramBuilder;
    use polyir::IBinOp;

    /// A 1-D reduction: s += a[i]. The loop-counter increment must be SCEV;
    /// the accumulated reduction (through a register) must not.
    #[test]
    fn scev_recognition_on_counter() {
        let mut pb = ProgramBuilder::new("t");
        let base = pb.array_f64(&[1.0; 16]);
        let mut f = pb.func("main", 0);
        let acc = f.const_f(0.0);
        f.for_loop("L", 0i64, 16i64, 1, |f, i| {
            let v = f.load(base as i64, i);
            f.fop_to(acc, polyir::FBinOp::Add, acc, v);
        });
        f.ret(Some(acc.into()));
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (mut ddg, interner, _) = fold_program(&p);
        // The latch add (i = i + 1) folds to an affine value → SCEV.
        let scevs = ddg.scev_stmts();
        assert!(!scevs.is_empty());
        let has_latch_add = scevs.iter().any(|s| {
            matches!(
                p.instr(interner.stmt_info(*s).instr),
                Instr::IOp {
                    op: IBinOp::Add,
                    ..
                }
            )
        });
        assert!(has_latch_add, "loop counter increment must be SCEV");
        // Removing SCEVs shrinks statements and dependences.
        let stmts_before = ddg.n_stmts();
        let deps_before = ddg.deps.len();
        let (sr, dr) = ddg.remove_scevs();
        assert!(sr > 0 && dr > 0);
        assert_eq!(ddg.n_stmts(), stmts_before - sr);
        assert_eq!(ddg.deps.len(), deps_before - dr);
        // The float accumulation chain (Flow through a register) survives.
        assert!(
            ddg.deps.iter().any(|d| d.kind == DepKind::Reg),
            "reduction chain must survive"
        );
    }

    /// Strided accesses fold to affine address functions: a[2i] has stride 2.
    #[test]
    fn access_functions_fold_with_stride() {
        let mut pb = ProgramBuilder::new("t");
        let base = pb.alloc(64);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 8i64, 1, |f, i| {
            let off = f.mul(i, 2i64);
            f.store(base as i64, off, i);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (ddg, _, _) = fold_program(&p);
        let store_access = ddg
            .accesses
            .values()
            .find(|a| a.is_write)
            .expect("store access folded");
        // coords = (root, i): stride along dim 1 must be 2
        assert_eq!(store_access.stride(1), Some(polylib::Rat::int(2)));
        assert!(store_access.domain.exact);
    }

    /// Loop-carried dependence folds to an affine producer map with
    /// distance 1 (the paper's I4→I4 row in Table 2).
    #[test]
    fn carried_dep_folds_to_affine_map() {
        let mut pb = ProgramBuilder::new("t");
        let base = pb.alloc(64);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 8i64, 1, |f, i| {
            let prev = f.load(base as i64, i);
            let v = f.add(prev, 1i64);
            let i1 = f.add(i, 1i64);
            f.store(base as i64, i1, v);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (ddg, _, _) = fold_program(&p);
        let flow = ddg
            .deps
            .iter()
            .find(|d| d.kind == DepKind::Flow && d.domain.count > 1)
            .expect("carried flow dependence folded");
        let map = flow.affine_src_map().expect("affine producer map");
        // producer i = consumer i - 1 on the loop dim (last component)
        let last = map.last().unwrap();
        assert_eq!(*last.coeffs.last().unwrap(), polylib::Rat::int(1));
        assert_eq!(last.c, polylib::Rat::int(-1));
        assert!(flow.domain.exact);
        // domain lower bound is 1 on the loop dim (first iteration reads
        // uninitialized memory → no dependence)
        assert_eq!(*flow.domain.box_lo.last().unwrap(), 1);
    }

    /// End-to-end %Aff: a fully affine kernel is ≈ 100% affine.
    #[test]
    fn affine_fraction_high_for_regular_kernel() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.alloc(256);
        let b = pb.alloc(256);
        let mut f = pb.func("main", 0);
        f.for_loop("Li", 0i64, 8i64, 1, |f, i| {
            f.for_loop("Lj", 0i64, 8i64, 1, |f, j| {
                let row = f.mul(i, 8i64);
                let idx = f.add(row, j);
                let v = f.load(a as i64, idx);
                let w = f.fmul(v, 2.0f64);
                f.store(b as i64, idx, w);
            });
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (ddg, _, _) = fold_program(&p);
        assert!(
            ddg.affine_fraction() > 0.95,
            "affine fraction was {}",
            ddg.affine_fraction()
        );
    }

    /// Indirection (a[b[i]]) produces non-affine access functions.
    #[test]
    fn indirection_is_nonaffine() {
        let mut pb = ProgramBuilder::new("t");
        // permutation-ish index array
        let idx = pb.array_i64(&[3, 0, 7, 1, 6, 2, 5, 4]);
        let data = pb.alloc(16);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 8i64, 1, |f, i| {
            let k = f.load(idx as i64, i);
            let v = f.load(data as i64, k); // indirect
            let _ = v;
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (ddg, interner, _) = fold_program(&p);
        // The indirect load's address function must be non-affine (Range).
        let nonaffine_loads = ddg
            .accesses
            .values()
            .filter(|a| !a.is_write && matches!(a.addr, LabelFold::Range(_)))
            .count();
        assert!(nonaffine_loads >= 1, "indirect access must fold to a range");
        let _ = interner;
    }

    /// Tolerant merge: missing shards are recorded, present shards merge
    /// exactly, and degenerate inputs (all missing / empty) still succeed.
    #[test]
    fn merge_parts_tolerant_records_missing_shards() {
        let mut pb = ProgramBuilder::new("t");
        let base = pb.alloc(64);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 8i64, 1, |f, i| {
            f.store(base as i64, i, i);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (ddg, _, _) = fold_program(&p);
        let n_stmts = ddg.n_stmts();
        assert!(n_stmts > 0);

        // One real part, two dead shards.
        let (merged, missing) = FoldedDdg::merge_parts_tolerant(vec![None, Some(ddg), None]);
        assert_eq!(missing, vec![0, 2]);
        assert_eq!(merged.n_stmts(), n_stmts);

        // Everything missing → valid empty DDG.
        let (empty, missing) = FoldedDdg::merge_parts_tolerant(vec![None, None]);
        assert_eq!(missing, vec![0, 1]);
        assert_eq!(empty.n_stmts(), 0);
        assert!(empty.deps.is_empty());

        // Empty iterator → empty DDG, nothing missing.
        let (empty, missing) = FoldedDdg::merge_parts_tolerant(std::iter::empty());
        assert!(missing.is_empty());
        assert_eq!(empty.total_ops, 0);
    }

    /// Budget pressure degrades folders: the folded DDG reports
    /// over-approximated statements but keeps every key and count.
    #[test]
    fn budget_pressure_degrades_folding() {
        let mut pb = ProgramBuilder::new("t");
        let base = pb.alloc(64);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 8i64, 1, |f, i| {
            let v = f.load(base as i64, i);
            let w = f.add(v, 1i64);
            f.store(base as i64, i, w);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();

        // Exact reference.
        let (exact, _, structure) = fold_program(&p);

        // Budget so tight the first folder allocation latches pressure.
        let budget = Arc::new(ResourceBudget::new(Some(1), None));
        let mut sink = FoldingSink::new();
        sink.set_budget(Arc::clone(&budget));
        let mut prof = polyddg::DdgProfiler::new(&p, &structure, sink);
        polyvm::Vm::new(&p).run(&[], &mut prof).unwrap();
        let (sink, interner) = prof.finish();
        let stats = sink.fold_stats();
        assert!(stats.budget_degraded > 0, "folders must degrade");
        let coarse = sink.finalize(&p, &interner);

        assert!(budget.under_pressure());
        assert!(coarse.overapprox_stmts() > 0);
        assert_eq!(coarse.n_stmts(), exact.n_stmts());
        assert_eq!(coarse.total_ops, exact.total_ops);
        // Same dependence keys, and each coarse domain box contains the
        // exact box (superset soundness).
        assert_eq!(coarse.deps.len(), exact.deps.len());
        for (c, e) in coarse.deps.iter().zip(exact.deps.iter()) {
            assert_eq!(
                (c.kind, c.src, c.dst, c.class),
                (e.kind, e.src, e.dst, e.class)
            );
            assert_eq!(c.domain.count, e.domain.count);
            for k in 0..c.domain.dim {
                assert!(c.domain.box_lo[k] <= e.domain.box_lo[k]);
                assert!(c.domain.box_hi[k] >= e.domain.box_hi[k]);
            }
        }
    }

    #[test]
    fn display_dep_matches_table2_format() {
        let mut pb = ProgramBuilder::new("t");
        let base = pb.alloc(64);
        let mut f = pb.func("main", 0);
        f.for_loop("L", 0i64, 8i64, 1, |f, i| {
            let prev = f.load(base as i64, i);
            let v = f.add(prev, 1i64);
            let i1 = f.add(i, 1i64);
            f.store(base as i64, i1, v);
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let (ddg, _, _) = fold_program(&p);
        let flow = ddg
            .deps
            .iter()
            .find(|d| d.kind == DepKind::Flow && d.domain.count > 1)
            .unwrap();
        let s = display_dep(flow, &["c0", "ck"], &["c0'", "ck'"]);
        assert!(s.contains("ck' = ck - 1"), "{s}");
    }
}
