//! Online affine fit-and-verify — the scalar core of the folding algorithm
//! (companion report RR-9244; §5 of the paper).
//!
//! A stream of `(point, value)` samples is summarized as an affine function
//! when one exists: the first affinely-independent samples *fix* a candidate
//! (exact rational solve), every further sample *verifies* it. A
//! contradiction triggers a refit with all retained samples; once the fit is
//! uniquely determined, retained samples are dropped and any contradiction
//! is final. Failure degrades to a `[min, max]` range — the paper's
//! over-approximation, never a wrong answer.

use polylib::linsolve::fit_affine;
use polylib::rat::Rat;

/// An affine function with rational coefficients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatAffine {
    /// Per-variable coefficients.
    pub coeffs: Vec<Rat>,
    /// Constant term.
    pub c: Rat,
}

impl RatAffine {
    /// Evaluate at an integer point.
    pub fn eval(&self, x: &[i64]) -> Rat {
        debug_assert_eq!(x.len(), self.coeffs.len());
        let mut acc = self.c;
        for (a, v) in self.coeffs.iter().zip(x) {
            acc = acc + *a * Rat::int(*v as i128);
        }
        acc
    }

    /// True if every coefficient and the constant are integers.
    pub fn is_integral(&self) -> bool {
        self.coeffs.iter().all(|a| a.is_integer()) && self.c.is_integer()
    }

    /// Convert to an integer [`polylib::AffineExpr`], if integral.
    pub fn to_affine_expr(&self) -> Option<polylib::AffineExpr> {
        if !self.is_integral() {
            return None;
        }
        Some(polylib::AffineExpr::new(
            self.coeffs.iter().map(|a| a.num() as i64).collect(),
            self.c.num() as i64,
        ))
    }

    /// Render with variable names, e.g. `cj + 0ck - 1`.
    pub fn display(&self, names: &[&str]) -> String {
        let mut parts = Vec::new();
        for (i, a) in self.coeffs.iter().enumerate() {
            if *a == Rat::ZERO {
                continue;
            }
            let n = names
                .get(i)
                .copied()
                .map(str::to_string)
                .unwrap_or(format!("x{i}"));
            if *a == Rat::ONE {
                parts.push(n);
            } else if *a == -Rat::ONE {
                parts.push(format!("-{n}"));
            } else {
                parts.push(format!("{a}{n}"));
            }
        }
        if self.c != Rat::ZERO || parts.is_empty() {
            parts.push(self.c.to_string());
        }
        let mut s = String::new();
        for (i, p) in parts.iter().enumerate() {
            if i > 0 {
                if let Some(rest) = p.strip_prefix('-') {
                    s.push_str(" - ");
                    s.push_str(rest);
                    continue;
                }
                s.push_str(" + ");
            }
            s.push_str(p);
        }
        s
    }
}

/// Rank of the affine sample matrix `[x | 1]` (rows = samples).
#[allow(clippy::needless_range_loop)] // elimination reads one row while mutating another
fn affine_rank(samples: &[(Vec<i64>, i64)], dim: usize) -> usize {
    let cols = dim + 1;
    let mut m: Vec<Vec<Rat>> = samples
        .iter()
        .map(|(p, _)| {
            let mut r: Vec<Rat> = p.iter().map(|&v| Rat::int(v as i128)).collect();
            r.push(Rat::ONE);
            r
        })
        .collect();
    let mut rank = 0usize;
    for col in 0..cols {
        let Some(p) = (rank..m.len()).find(|&r| m[r][col] != Rat::ZERO) else {
            continue;
        };
        m.swap(rank, p);
        let inv = Rat::ONE / m[rank][col];
        for v in m[rank].iter_mut() {
            *v = *v * inv;
        }
        for r in 0..m.len() {
            if r != rank && m[r][col] != Rat::ZERO {
                let f = m[r][col];
                for cc in 0..cols {
                    let s = m[rank][cc] * f;
                    m[r][cc] = m[r][cc] - s;
                }
            }
        }
        rank += 1;
        if rank == m.len() {
            break;
        }
    }
    rank
}

/// Final classification of a folded scalar stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitResult {
    /// No samples were seen.
    Empty,
    /// All samples match this affine function exactly.
    Affine(RatAffine),
    /// Over-approximation: only the value range is known.
    Range {
        /// Minimum observed value.
        min: i64,
        /// Maximum observed value.
        max: i64,
    },
}

/// Maximum retained samples while the fit is still under-determined.
const MAX_SAMPLES: usize = 512;

/// Streaming affine fitter over points of a fixed dimension.
#[derive(Debug, Clone)]
pub struct OnlineAffineFitter {
    dim: usize,
    samples: Vec<(Vec<i64>, i64)>,
    fit: Option<RatAffine>,
    unique: bool,
    failed: bool,
    vmin: i64,
    vmax: i64,
    n: u64,
}

impl OnlineAffineFitter {
    /// Fitter over `dim`-dimensional points.
    pub fn new(dim: usize) -> Self {
        OnlineAffineFitter {
            dim,
            samples: Vec::new(),
            fit: None,
            unique: false,
            failed: false,
            vmin: i64::MAX,
            vmax: i64::MIN,
            n: 0,
        }
    }

    /// Number of samples pushed.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True if no samples were pushed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Feed one sample.
    pub fn push(&mut self, x: &[i64], v: i64) {
        debug_assert_eq!(x.len(), self.dim);
        self.n += 1;
        self.vmin = self.vmin.min(v);
        self.vmax = self.vmax.max(v);
        if self.failed {
            return;
        }
        if let Some(f) = &self.fit {
            if f.eval(x) == Rat::int(v as i128) {
                return; // verified
            }
            if self.unique {
                // A uniquely-determined fit was contradicted: non-affine.
                self.failed = true;
                return;
            }
        }
        // (Re)fit with retained samples plus this one.
        self.samples.push((x.to_vec(), v));
        if self.samples.len() > MAX_SAMPLES {
            self.failed = true;
            self.samples.clear();
            return;
        }
        match fit_affine(&self.samples) {
            Some((coeffs, c)) => {
                self.unique = affine_rank(&self.samples, self.dim) == self.dim + 1;
                self.fit = Some(RatAffine { coeffs, c });
                if self.unique {
                    self.samples.clear();
                    self.samples.shrink_to_fit();
                }
            }
            None => {
                self.failed = true;
                self.samples.clear();
            }
        }
    }

    /// Final classification.
    pub fn result(&self) -> FitResult {
        if self.n == 0 {
            return FitResult::Empty;
        }
        if self.failed {
            return FitResult::Range {
                min: self.vmin,
                max: self.vmax,
            };
        }
        match &self.fit {
            Some(f) => FitResult::Affine(f.clone()),
            None => FitResult::Range {
                min: self.vmin,
                max: self.vmax,
            },
        }
    }

    /// Observed value range (valid for any non-empty stream).
    pub fn range(&self) -> (i64, i64) {
        (self.vmin, self.vmax)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exact_affine_stream() {
        // v = 3i - 2j + 1 over a 5x5 grid
        let mut f = OnlineAffineFitter::new(2);
        for i in 0..5 {
            for j in 0..5 {
                f.push(&[i, j], 3 * i - 2 * j + 1);
            }
        }
        let FitResult::Affine(a) = f.result() else {
            panic!("expected affine fit");
        };
        assert_eq!(a.coeffs, vec![Rat::int(3), Rat::int(-2)]);
        assert_eq!(a.c, Rat::int(1));
        assert!(a.is_integral());
    }

    #[test]
    fn rejects_nonaffine_with_range() {
        let mut f = OnlineAffineFitter::new(1);
        for i in 0..10 {
            f.push(&[i], i * i);
        }
        assert_eq!(f.result(), FitResult::Range { min: 0, max: 81 });
    }

    #[test]
    fn constant_stream_is_affine() {
        let mut f = OnlineAffineFitter::new(2);
        for i in 0..4 {
            for j in 0..4 {
                f.push(&[i, j], 7);
            }
        }
        let FitResult::Affine(a) = f.result() else {
            panic!("expected affine");
        };
        assert_eq!(a.eval(&[100, -3]), Rat::int(7));
    }

    /// An underdetermined fit (samples confined to a subspace) is exact on
    /// every *observed* point even though it is not unique globally.
    #[test]
    fn underdetermined_fit_exact_on_observed_points() {
        let mut f = OnlineAffineFitter::new(2);
        let pts: Vec<[i64; 2]> = (0..4).map(|i| [i, i + 1]).collect();
        for p in &pts {
            f.push(p, 7);
        }
        let FitResult::Affine(a) = f.result() else {
            panic!("expected affine");
        };
        for p in &pts {
            assert_eq!(a.eval(p), Rat::int(7));
        }
    }

    /// Degenerate sampling (one dim never varies) still verifies correctly
    /// on the observed subspace, and refits on contradiction.
    #[test]
    fn refits_underdetermined_on_contradiction() {
        let mut f = OnlineAffineFitter::new(2);
        // First only j varies (i = 0): fit sees v = j.
        for j in 0..4 {
            f.push(&[0, j], j);
        }
        // Now i varies: v = 10i + j — a contradiction w.r.t. the first fit,
        // resolved by refitting.
        for i in 1..4 {
            for j in 0..4 {
                f.push(&[i, j], 10 * i + j);
            }
        }
        let FitResult::Affine(a) = f.result() else {
            panic!("expected affine after refit");
        };
        assert_eq!(a.coeffs, vec![Rat::int(10), Rat::int(1)]);
    }

    #[test]
    fn contradiction_after_unique_is_final() {
        let mut f = OnlineAffineFitter::new(1);
        for i in 0..5 {
            f.push(&[i], 2 * i);
        }
        f.push(&[5], 99);
        assert!(matches!(f.result(), FitResult::Range { .. }));
        // stays failed
        f.push(&[6], 12);
        assert!(matches!(f.result(), FitResult::Range { .. }));
    }

    #[test]
    fn empty_and_len() {
        let f = OnlineAffineFitter::new(3);
        assert_eq!(f.result(), FitResult::Empty);
        assert!(f.is_empty());
    }

    #[test]
    fn zero_dim_constant() {
        let mut f = OnlineAffineFitter::new(0);
        f.push(&[], 4);
        f.push(&[], 4);
        let FitResult::Affine(a) = f.result() else {
            panic!();
        };
        assert_eq!(a.c, Rat::int(4));
        let mut g = OnlineAffineFitter::new(0);
        g.push(&[], 4);
        g.push(&[], 5);
        assert_eq!(g.result(), FitResult::Range { min: 4, max: 5 });
    }

    #[test]
    fn rational_fit_detected_as_non_integral() {
        // v = i/2 rounded? No — feed truly half-integer-slope data v = i/2
        // only at even i so it IS affine with coeff 1/2.
        let mut f = OnlineAffineFitter::new(1);
        for i in (0..10).step_by(2) {
            f.push(&[i], i / 2);
        }
        let FitResult::Affine(a) = f.result() else {
            panic!();
        };
        assert_eq!(a.coeffs, vec![Rat::new(1, 2)]);
        assert!(!a.is_integral());
        assert!(a.to_affine_expr().is_none());
    }

    #[test]
    fn display_readable() {
        let a = RatAffine {
            coeffs: vec![Rat::int(1), Rat::int(0), Rat::int(-1)],
            c: Rat::int(-1),
        };
        assert_eq!(a.display(&["cj", "ck", "cl"]), "cj - cl - 1");
    }
}
