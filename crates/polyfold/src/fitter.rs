//! Online affine fit-and-verify — the scalar core of the folding algorithm
//! (companion report RR-9244; §5 of the paper).
//!
//! A stream of `(point, value)` samples is summarized as an affine function
//! when one exists: the first affinely-independent samples *fix* a candidate
//! (exact rational solve, maintained incrementally as a cached RREF), every
//! further sample *verifies* it. A contradiction triggers an incremental
//! refit; once the fit is uniquely determined, the cached system is dropped
//! and any contradiction is final. Failure degrades to a `[min, max]` range
//! — the paper's over-approximation, never a wrong answer.
//!
//! Verification is the hot path (one call per folded event per fitter), so
//! once a candidate is integral with `i64`-sized coefficients it is cached
//! as a plain integer dot product checked with overflow-aware arithmetic;
//! overflow falls back to the exact rational evaluation, so the fast path is
//! sample-for-sample equivalent to the rational one.

use polylib::linsolve::IncrementalFit;
use polylib::rat::Rat;

/// An affine function with rational coefficients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatAffine {
    /// Per-variable coefficients.
    pub coeffs: Vec<Rat>,
    /// Constant term.
    pub c: Rat,
}

impl RatAffine {
    /// Evaluate at an integer point.
    pub fn eval(&self, x: &[i64]) -> Rat {
        debug_assert_eq!(x.len(), self.coeffs.len());
        let mut acc = self.c;
        for (a, v) in self.coeffs.iter().zip(x) {
            acc = acc + *a * Rat::int(*v as i128);
        }
        acc
    }

    /// True if every coefficient and the constant are integers.
    pub fn is_integral(&self) -> bool {
        self.coeffs.iter().all(|a| a.is_integer()) && self.c.is_integer()
    }

    /// Convert to an integer [`polylib::AffineExpr`], if integral.
    pub fn to_affine_expr(&self) -> Option<polylib::AffineExpr> {
        if !self.is_integral() {
            return None;
        }
        Some(polylib::AffineExpr::new(
            self.coeffs.iter().map(|a| a.num() as i64).collect(),
            self.c.num() as i64,
        ))
    }

    /// Render with variable names, e.g. `cj + 0ck - 1`.
    pub fn display(&self, names: &[&str]) -> String {
        let mut parts = Vec::new();
        for (i, a) in self.coeffs.iter().enumerate() {
            if *a == Rat::ZERO {
                continue;
            }
            let n = names
                .get(i)
                .copied()
                .map(str::to_string)
                .unwrap_or(format!("x{i}"));
            if *a == Rat::ONE {
                parts.push(n);
            } else if *a == -Rat::ONE {
                parts.push(format!("-{n}"));
            } else {
                parts.push(format!("{a}{n}"));
            }
        }
        if self.c != Rat::ZERO || parts.is_empty() {
            parts.push(self.c.to_string());
        }
        let mut s = String::new();
        for (i, p) in parts.iter().enumerate() {
            if i > 0 {
                if let Some(rest) = p.strip_prefix('-') {
                    s.push_str(" - ");
                    s.push_str(rest);
                    continue;
                }
                s.push_str(" + ");
            }
            s.push_str(p);
        }
        s
    }
}

/// Integer mirror of an integral [`RatAffine`]: verification becomes one
/// overflow-checked `i64` dot product with no `Rat` normalization.
#[derive(Debug, Clone)]
struct FastAffine {
    coeffs: Vec<i64>,
    c: i64,
}

impl FastAffine {
    /// Cacheable iff every coefficient and the constant are `i64` integers.
    fn from_rat(f: &RatAffine) -> Option<FastAffine> {
        if !f.is_integral() {
            return None;
        }
        let c = i64::try_from(f.c.num()).ok()?;
        let coeffs = f
            .coeffs
            .iter()
            .map(|a| i64::try_from(a.num()).ok())
            .collect::<Option<Vec<i64>>>()?;
        Some(FastAffine { coeffs, c })
    }

    /// `c + coeffs · x`, or `None` on overflow (caller falls back to the
    /// exact rational evaluation).
    #[inline]
    fn eval_checked(&self, x: &[i64]) -> Option<i64> {
        let mut acc = self.c;
        for (&a, &v) in self.coeffs.iter().zip(x) {
            acc = acc.checked_add(a.checked_mul(v)?)?;
        }
        Some(acc)
    }
}

/// Final classification of a folded scalar stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitResult {
    /// No samples were seen.
    Empty,
    /// All samples match this affine function exactly.
    Affine(RatAffine),
    /// Over-approximation: only the value range is known.
    Range {
        /// Minimum observed value.
        min: i64,
        /// Maximum observed value.
        max: i64,
    },
}

/// Maximum retained samples while the fit is still under-determined.
const MAX_SAMPLES: usize = 512;

/// Streaming affine fitter over points of a fixed dimension.
#[derive(Debug, Clone)]
pub struct OnlineAffineFitter {
    dim: usize,
    /// Cached RREF of the samples that fixed the current candidate (the
    /// first sample plus every contradiction) — a refit is one incremental
    /// row reduction, not a from-scratch elimination.
    sys: IncrementalFit,
    /// Rows fed into `sys` (mirrors the retained-sample cap).
    retained: usize,
    fit: Option<RatAffine>,
    /// Integer mirror of `fit` when integral and `i64`-sized.
    fast: Option<FastAffine>,
    /// False forces rational-only verification (differential baseline).
    fast_enabled: bool,
    unique: bool,
    failed: bool,
    vmin: i64,
    vmax: i64,
    n: u64,
}

impl OnlineAffineFitter {
    /// Fitter over `dim`-dimensional points (integer fast path enabled).
    pub fn new(dim: usize) -> Self {
        Self::with_fast(dim, true)
    }

    /// Fitter with the integer verification fast path explicitly enabled or
    /// disabled — `with_fast(dim, false)` is the pure-rational reference the
    /// differential tests and benchmarks compare against.
    pub fn with_fast(dim: usize, fast_enabled: bool) -> Self {
        OnlineAffineFitter {
            dim,
            sys: IncrementalFit::new(dim),
            retained: 0,
            fit: None,
            fast: None,
            fast_enabled,
            unique: false,
            failed: false,
            vmin: i64::MAX,
            vmax: i64::MIN,
            n: 0,
        }
    }

    /// Number of samples pushed.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True if no samples were pushed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Feed one sample.
    pub fn push(&mut self, x: &[i64], v: i64) {
        debug_assert_eq!(x.len(), self.dim);
        self.n += 1;
        self.vmin = self.vmin.min(v);
        self.vmax = self.vmax.max(v);
        if self.failed {
            return;
        }
        if let Some(f) = &self.fit {
            let verified = match &self.fast {
                Some(fa) if self.fast_enabled => match fa.eval_checked(x) {
                    Some(sum) => sum == v,
                    // Overflow: fall back to the exact rational path.
                    None => f.eval(x) == Rat::int(v as i128),
                },
                _ => f.eval(x) == Rat::int(v as i128),
            };
            if verified {
                return;
            }
            if self.unique {
                // A uniquely-determined fit was contradicted: non-affine.
                self.failed = true;
                return;
            }
        }
        // (Re)fit: reduce this sample into the cached system.
        self.retained += 1;
        if self.retained > MAX_SAMPLES {
            self.failed = true;
            self.sys.clear();
            return;
        }
        if self.sys.push(x, v) {
            let (coeffs, c) = self.sys.solution().expect("consistent system");
            self.unique = self.sys.rank() == self.dim + 1;
            let fit = RatAffine { coeffs, c };
            self.fast = FastAffine::from_rat(&fit);
            self.fit = Some(fit);
            if self.unique {
                // Contradictions are final from here on: free the system.
                self.sys.clear();
            }
        } else {
            self.failed = true;
            self.sys.clear();
        }
    }

    /// Final classification.
    pub fn result(&self) -> FitResult {
        if self.n == 0 {
            return FitResult::Empty;
        }
        if self.failed {
            return FitResult::Range {
                min: self.vmin,
                max: self.vmax,
            };
        }
        match &self.fit {
            Some(f) => FitResult::Affine(f.clone()),
            None => FitResult::Range {
                min: self.vmin,
                max: self.vmax,
            },
        }
    }

    /// Observed value range (valid for any non-empty stream).
    pub fn range(&self) -> (i64, i64) {
        (self.vmin, self.vmax)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exact_affine_stream() {
        // v = 3i - 2j + 1 over a 5x5 grid
        let mut f = OnlineAffineFitter::new(2);
        for i in 0..5 {
            for j in 0..5 {
                f.push(&[i, j], 3 * i - 2 * j + 1);
            }
        }
        let FitResult::Affine(a) = f.result() else {
            panic!("expected affine fit");
        };
        assert_eq!(a.coeffs, vec![Rat::int(3), Rat::int(-2)]);
        assert_eq!(a.c, Rat::int(1));
        assert!(a.is_integral());
    }

    #[test]
    fn rejects_nonaffine_with_range() {
        let mut f = OnlineAffineFitter::new(1);
        for i in 0..10 {
            f.push(&[i], i * i);
        }
        assert_eq!(f.result(), FitResult::Range { min: 0, max: 81 });
    }

    #[test]
    fn constant_stream_is_affine() {
        let mut f = OnlineAffineFitter::new(2);
        for i in 0..4 {
            for j in 0..4 {
                f.push(&[i, j], 7);
            }
        }
        let FitResult::Affine(a) = f.result() else {
            panic!("expected affine");
        };
        assert_eq!(a.eval(&[100, -3]), Rat::int(7));
    }

    /// An underdetermined fit (samples confined to a subspace) is exact on
    /// every *observed* point even though it is not unique globally.
    #[test]
    fn underdetermined_fit_exact_on_observed_points() {
        let mut f = OnlineAffineFitter::new(2);
        let pts: Vec<[i64; 2]> = (0..4).map(|i| [i, i + 1]).collect();
        for p in &pts {
            f.push(p, 7);
        }
        let FitResult::Affine(a) = f.result() else {
            panic!("expected affine");
        };
        for p in &pts {
            assert_eq!(a.eval(p), Rat::int(7));
        }
    }

    /// Degenerate sampling (one dim never varies) still verifies correctly
    /// on the observed subspace, and refits on contradiction.
    #[test]
    fn refits_underdetermined_on_contradiction() {
        let mut f = OnlineAffineFitter::new(2);
        // First only j varies (i = 0): fit sees v = j.
        for j in 0..4 {
            f.push(&[0, j], j);
        }
        // Now i varies: v = 10i + j — a contradiction w.r.t. the first fit,
        // resolved by refitting.
        for i in 1..4 {
            for j in 0..4 {
                f.push(&[i, j], 10 * i + j);
            }
        }
        let FitResult::Affine(a) = f.result() else {
            panic!("expected affine after refit");
        };
        assert_eq!(a.coeffs, vec![Rat::int(10), Rat::int(1)]);
    }

    #[test]
    fn contradiction_after_unique_is_final() {
        let mut f = OnlineAffineFitter::new(1);
        for i in 0..5 {
            f.push(&[i], 2 * i);
        }
        f.push(&[5], 99);
        assert!(matches!(f.result(), FitResult::Range { .. }));
        // stays failed
        f.push(&[6], 12);
        assert!(matches!(f.result(), FitResult::Range { .. }));
    }

    #[test]
    fn empty_and_len() {
        let f = OnlineAffineFitter::new(3);
        assert_eq!(f.result(), FitResult::Empty);
        assert!(f.is_empty());
    }

    #[test]
    fn zero_dim_constant() {
        let mut f = OnlineAffineFitter::new(0);
        f.push(&[], 4);
        f.push(&[], 4);
        let FitResult::Affine(a) = f.result() else {
            panic!();
        };
        assert_eq!(a.c, Rat::int(4));
        let mut g = OnlineAffineFitter::new(0);
        g.push(&[], 4);
        g.push(&[], 5);
        assert_eq!(g.result(), FitResult::Range { min: 4, max: 5 });
    }

    #[test]
    fn rational_fit_detected_as_non_integral() {
        // v = i/2 rounded? No — feed truly half-integer-slope data v = i/2
        // only at even i so it IS affine with coeff 1/2.
        let mut f = OnlineAffineFitter::new(1);
        for i in (0..10).step_by(2) {
            f.push(&[i], i / 2);
        }
        let FitResult::Affine(a) = f.result() else {
            panic!();
        };
        assert_eq!(a.coeffs, vec![Rat::new(1, 2)]);
        assert!(!a.is_integral());
        assert!(a.to_affine_expr().is_none());
    }

    #[test]
    fn display_readable() {
        let a = RatAffine {
            coeffs: vec![Rat::int(1), Rat::int(0), Rat::int(-1)],
            c: Rat::int(-1),
        };
        assert_eq!(a.display(&["cj", "ck", "cl"]), "cj - cl - 1");
    }

    /// The i64 fast path and the pure-rational reference agree sample for
    /// sample on an affine stream with a mid-stream contradiction.
    #[test]
    fn fast_path_matches_rat_only() {
        let mut fast = OnlineAffineFitter::new(2);
        let mut slow = OnlineAffineFitter::with_fast(2, false);
        for i in 0..6 {
            for j in 0..6 {
                let v = if i == 5 && j == 3 { 999 } else { 4 * i - j + 2 };
                fast.push(&[i, j], v);
                slow.push(&[i, j], v);
            }
        }
        assert_eq!(fast.result(), slow.result());
        assert_eq!(fast.range(), slow.range());
    }

    /// Values near i64::MAX force the checked dot product to overflow; the
    /// fitter must fall back to exact rational evaluation and still verify.
    #[test]
    fn overflow_falls_back_to_rational() {
        let big = i64::MAX / 2;
        let mut fast = OnlineAffineFitter::new(1);
        let mut slow = OnlineAffineFitter::with_fast(1, false);
        // v = big * x: coefficient fits i64, but big * 3 overflows.
        for x in [0i64, 1, 2, 3, 4] {
            let v = big.wrapping_mul(x);
            fast.push(&[x], v);
            slow.push(&[x], v);
        }
        assert_eq!(fast.result(), slow.result());
        // big * 3 wraps negative, so the stream is NOT affine: both must
        // have degraded identically, not silently accepted wrapped values.
        assert!(matches!(fast.result(), FitResult::Range { .. }));
    }

    /// An overflow-free huge-coefficient stream stays affine on both paths.
    #[test]
    fn overflow_fallback_verifies_true_affine() {
        let big = i64::MAX / 8;
        let mut fast = OnlineAffineFitter::new(1);
        let mut slow = OnlineAffineFitter::with_fast(1, false);
        for x in 0i64..6 {
            // Exact in i128 but the checked i64 product overflows at x >= 8
            // only — keep x small so values stay representable while the
            // accumulated products exercise large magnitudes.
            let v = big * x;
            fast.push(&[x], v);
            slow.push(&[x], v);
        }
        assert_eq!(fast.result(), slow.result());
        assert!(matches!(fast.result(), FitResult::Affine(_)));
    }

    /// Rational (non-integral) fits never build a fast mirror; verification
    /// stays on the exact path and still works.
    #[test]
    fn rational_fit_has_no_fast_mirror() {
        let mut f = OnlineAffineFitter::new(1);
        for i in (0..20).step_by(2) {
            f.push(&[i], i / 2);
        }
        assert!(f.fast.is_none(), "half-integer slope must not cache i64");
        let FitResult::Affine(a) = f.result() else {
            panic!();
        };
        assert_eq!(a.coeffs, vec![Rat::new(1, 2)]);
    }
}
