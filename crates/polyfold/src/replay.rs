//! Offline re-folding of `.ptrace` recordings (capture/replay split).
//!
//! A recording holds the fully-resolved folding-interface stream, so replay
//! needs neither the VM nor the shadow resolver: [`fold_recording`] decodes
//! frames back into recycled [`EventChunk`]s and folds them — serially for
//! K ≤ 1, or through the same [`ShardRouter`] → K-worker shape as the live
//! pipeline for K > 1. Sharding is by folding key with per-key serial order
//! preserved, so the replayed [`FoldedDdg`] is byte-identical (see
//! [`FoldedDdg::canonical_text`]) to the live fold at *every* K — the
//! invariant the CI replay gate enforces.

use crate::{ChunkScratch, FoldOptions, FoldedDdg, FoldingSink};
use polyddg::chunk::{ChunkWriter, EventChunk};
use polyddg::pipeline::ShardRouter;
use polyiiv::context::ContextInterner;
use polyir::Program;
use polyrec::{program_hash, ReadStats, TraceReader};
use polyresist::PolyProfError;
use polytrace::{Collector, Counter};
use std::path::Path;
use std::sync::mpsc::sync_channel;
use std::sync::Arc;

/// Fold a recording at `path` into a [`FoldedDdg`] using `fold_threads`
/// shards, without executing the program.
///
/// `prog` must be the program the recording was captured from: the header's
/// program hash is checked first (a mismatch is a structured error), and
/// finalization classifies SCEVs against the program's instructions.
pub fn fold_recording(
    path: &Path,
    prog: &Program,
    fold_threads: usize,
    options: FoldOptions,
    trace: Option<&Arc<Collector>>,
) -> Result<(FoldedDdg, ContextInterner), PolyProfError> {
    let mut reader = TraceReader::open(path)?;
    let want = program_hash(prog);
    let got = reader.meta().program_hash;
    if want != got {
        return Err(PolyProfError::Recording {
            path: path.display().to_string(),
            detail: format!(
                "program hash mismatch: recording was captured from {got:#018x}, \
                 replaying against {want:#018x} ({})",
                prog.name
            ),
        });
    }
    let k = fold_threads.max(1);
    let (sinks, interner, stats) = if k == 1 {
        let mut sink = FoldingSink::with_options(options);
        let mut scratch = ChunkScratch::default();
        let mut chunk = EventChunk::default();
        while reader.next_chunk(&mut chunk)? {
            sink.fold_chunk(&chunk, &mut scratch);
        }
        let (interner, stats) = reader.finish()?;
        (vec![sink], interner, stats)
    } else {
        fold_replay_sharded(reader, k, options)?
    };
    if let Some(c) = trace {
        c.add(Counter::RecFramesRead, stats.frames);
        c.add(Counter::RecBytesRead, stats.bytes);
        for sink in &sinks {
            let fs = sink.fold_stats();
            c.add(Counter::EventsFolded, fs.events_folded);
            c.add(Counter::DepsFolded, fs.deps_folded);
            c.add(Counter::ChunksFolded, fs.chunks_folded);
        }
    }
    let parts = sinks
        .into_iter()
        .map(|s| s.finalize(prog, &interner))
        .collect::<Vec<_>>();
    Ok((FoldedDdg::merge_parts(parts), interner))
}

/// K > 1 replay: a reader thread decodes frames and routes the events by
/// folding key into K worker channels (the live pipeline's stage-2 → stage-3
/// edge, minus the VM and resolver in front of it).
fn fold_replay_sharded<R: std::io::Read + Send>(
    mut reader: TraceReader<R>,
    k: usize,
    options: FoldOptions,
) -> Result<(Vec<FoldingSink>, ContextInterner, ReadStats), PolyProfError> {
    // Mirror the live pipeline's defaults for batching and backpressure.
    let chunk_events = reader.meta().chunk_events.max(1) as usize;
    let queue = 4;

    std::thread::scope(|s| {
        let mut shard_writers = Vec::with_capacity(k);
        let mut shard_ends = Vec::with_capacity(k);
        for _ in 0..k {
            let (tx, rx) = sync_channel::<EventChunk>(queue);
            let (pool_tx, pool_rx) = sync_channel::<EventChunk>(queue + 2);
            shard_writers.push(ChunkWriter::new(chunk_events, tx, pool_rx));
            shard_ends.push((rx, pool_tx));
        }

        let feeder = s.spawn(
            move || -> Result<(ContextInterner, ReadStats), PolyProfError> {
                let mut router = ShardRouter::new(shard_writers);
                let mut chunk = EventChunk::default();
                while reader.next_chunk(&mut chunk)? {
                    // Recordings carry only resolved events, so replay_into
                    // (which rejects MemPre) is safe by construction.
                    chunk.replay_into(&mut router);
                }
                router.finish();
                reader.finish()
            },
        );

        let workers: Vec<_> = shard_ends
            .into_iter()
            .map(|(rx, pool_tx)| {
                s.spawn(move || {
                    let mut sink = FoldingSink::with_options(options);
                    let mut scratch = ChunkScratch::default();
                    while let Ok(mut chunk) = rx.recv() {
                        sink.fold_chunk(&chunk, &mut scratch);
                        chunk.clear();
                        let _ = pool_tx.try_send(chunk);
                    }
                    sink
                })
            })
            .collect();

        let fed = feeder.join().expect("replay feeder never panics");
        let sinks: Vec<FoldingSink> = workers
            .into_iter()
            .map(|h| h.join().expect("replay worker never panics"))
            .collect();
        let (interner, stats) = fed?;
        Ok((sinks, interner, stats))
    })
}
