//! Stream folding: compress a lexicographically-ordered stream of iteration
//! points (plus optional integer label vectors) into a polyhedral domain
//! with affine per-dimension bounds and affine label functions — or a
//! flagged over-approximation when the stream is not affine (guarded
//! statements with holes, non-monotone re-entry, non-affine bounds).
//!
//! Canonical IVs start at 0 and step by 1, so within a fixed outer prefix
//! the values of each dimension form a contiguous run `[lb(prefix),
//! ub(prefix)]`; the folder closes one *group* per prefix change, feeding
//! `(prefix, first)` / `(prefix, last)` samples to per-dimension
//! [`OnlineAffineFitter`]s for the lower/upper bounds.

use crate::fitter::{FitResult, OnlineAffineFitter, RatAffine};
use polylib::{AffineExpr, Polyhedron};

/// A folded iteration domain.
#[derive(Debug, Clone)]
pub struct FoldedDomain {
    /// The (possibly over-approximated) polyhedron containing all points.
    pub poly: Polyhedron,
    /// True when the polyhedron's integer points are exactly the stream.
    pub exact: bool,
    /// Number of (deduplicated) points folded.
    pub count: u64,
    /// Dimensionality.
    pub dim: usize,
    /// Per-dimension observed minima (bounding box).
    pub box_lo: Vec<i64>,
    /// Per-dimension observed maxima (bounding box).
    pub box_hi: Vec<i64>,
}

/// Folded labels attached to a domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelFold {
    /// The stream carried no labels.
    None,
    /// Every component is an affine function of the coordinates.
    Affine(Vec<RatAffine>),
    /// Over-approximation: per-component value ranges.
    Range(Vec<(i64, i64)>),
}

impl LabelFold {
    /// True for the affine case.
    pub fn is_affine(&self) -> bool {
        matches!(self, LabelFold::Affine(_))
    }
}

/// Result of folding one stream.
#[derive(Debug, Clone)]
pub struct FoldedStream {
    /// The iteration domain.
    pub domain: FoldedDomain,
    /// The label function(s).
    pub labels: LabelFold,
}

/// Online folder for one context's stream.
#[derive(Debug, Clone)]
pub struct StreamFolder {
    dim: usize,
    count: u64,
    /// Previous point, in a buffer retained across pushes (steady-state
    /// pushes never allocate).
    prev_buf: Vec<i64>,
    has_prev: bool,
    monotone: bool,
    holes: bool,
    /// Per-dimension open-group first/last values.
    open_first: Vec<i64>,
    open_last: Vec<i64>,
    lb: Vec<OnlineAffineFitter>,
    ub: Vec<OnlineAffineFitter>,
    box_lo: Vec<i64>,
    box_hi: Vec<i64>,
    label_arity: Option<usize>,
    label_fitters: Vec<OnlineAffineFitter>,
    labels_present: bool,
    labels_consistent: bool,
    /// Budget-degraded mode: affine fitters dropped, only bounding box,
    /// count, and label ranges are maintained (`exact` is forced off).
    coarse: bool,
    /// Per-component label `(min, max)` ranges, maintained in coarse mode
    /// only (the fitters track ranges themselves otherwise).
    label_range: Vec<(i64, i64)>,
    /// Integer verification fast path for all fitters this folder creates.
    fast_fit: bool,
}

impl StreamFolder {
    /// Folder for `dim`-dimensional points (integer fast-path fitters).
    pub fn new(dim: usize) -> Self {
        Self::with_fast_fit(dim, true)
    }

    /// Folder with the fitters' integer fast path explicitly enabled or
    /// disabled (`false` = the pure-rational reference configuration).
    pub fn with_fast_fit(dim: usize, fast_fit: bool) -> Self {
        StreamFolder {
            dim,
            count: 0,
            prev_buf: Vec::with_capacity(dim),
            has_prev: false,
            monotone: true,
            holes: false,
            open_first: vec![0; dim],
            open_last: vec![0; dim],
            lb: (0..dim)
                .map(|d| OnlineAffineFitter::with_fast(d, fast_fit))
                .collect(),
            ub: (0..dim)
                .map(|d| OnlineAffineFitter::with_fast(d, fast_fit))
                .collect(),
            box_lo: vec![i64::MAX; dim],
            box_hi: vec![i64::MIN; dim],
            label_arity: None,
            label_fitters: Vec::new(),
            labels_present: false,
            labels_consistent: true,
            coarse: false,
            label_range: Vec::new(),
            fast_fit,
        }
    }

    /// Points folded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Switch to budget-degraded folding: drop the per-dimension affine
    /// fitters (freeing their memory) and keep only the bounding box, the
    /// deduplicated point count, and per-component label ranges. The
    /// finalized domain is the box — a superset of the exact domain — and is
    /// flagged `exact = false`. Idempotent.
    pub fn degrade(&mut self) {
        if self.coarse {
            return;
        }
        self.coarse = true;
        self.lb = Vec::new();
        self.ub = Vec::new();
        self.label_range = self.label_fitters.iter().map(|f| f.range()).collect();
        self.label_fitters = Vec::new();
    }

    /// True once [`degrade`](Self::degrade) has been called.
    pub fn is_coarse(&self) -> bool {
        self.coarse
    }

    /// Feed one point with an optional label vector. Points must arrive in
    /// execution order (lexicographically non-decreasing); violations are
    /// absorbed as over-approximations, never errors.
    pub fn push(&mut self, coords: &[i64], labels: Option<&[i64]>) {
        assert_eq!(coords.len(), self.dim, "stream changed dimensionality");
        // Exact duplicate of the previous point (e.g. a twice-used operand
        // producing the same dependence twice): ignore.
        if self.has_prev && self.prev_buf == coords {
            // Labels of duplicates still verified for consistency.
            self.push_labels(coords, labels);
            return;
        }
        self.count += 1;
        for (k, &c) in coords.iter().enumerate().take(self.dim) {
            self.box_lo[k] = self.box_lo[k].min(c);
            self.box_hi[k] = self.box_hi[k].max(c);
        }
        if self.coarse {
            // Degraded path: box + count only — no group machinery. The
            // dedup compare above still needs the previous point.
            self.prev_buf.clear();
            self.prev_buf.extend_from_slice(coords);
            self.has_prev = true;
            self.push_labels(coords, labels);
            return;
        }
        if !self.has_prev {
            self.open_first.copy_from_slice(coords);
            self.open_last.copy_from_slice(coords);
        } else {
            // Take the buffer out so `close_groups` can borrow self mutably;
            // it is put back (and refilled) below.
            let prev = std::mem::take(&mut self.prev_buf);
            let j = (0..self.dim).find(|&k| coords[k] != prev[k]);
            match j {
                None => unreachable!("duplicates handled above"),
                Some(j) if coords[j] < prev[j] => {
                    // Lexicographic decrease: loop re-entry under an
                    // unmodelled repetition — over-approximate.
                    self.monotone = false;
                    // Close everything and restart groups.
                    self.close_groups(&prev, 0);
                    self.open_first.copy_from_slice(coords);
                    self.open_last.copy_from_slice(coords);
                }
                Some(j) => {
                    if coords[j] != prev[j] + 1 {
                        self.holes = true;
                    }
                    self.close_groups(&prev, j + 1);
                    self.open_last[j] = coords[j];
                    self.open_first[j + 1..self.dim].copy_from_slice(&coords[j + 1..self.dim]);
                    self.open_last[j + 1..self.dim].copy_from_slice(&coords[j + 1..self.dim]);
                }
            }
            self.prev_buf = prev;
        }
        self.prev_buf.clear();
        self.prev_buf.extend_from_slice(coords);
        self.has_prev = true;
        self.push_labels(coords, labels);
    }

    fn push_labels(&mut self, coords: &[i64], labels: Option<&[i64]>) {
        if self.coarse {
            match labels {
                Some(ls) => {
                    match self.label_arity {
                        None => {
                            self.label_arity = Some(ls.len());
                            self.label_range = ls.iter().map(|&v| (v, v)).collect();
                            self.labels_present = true;
                        }
                        Some(a) if a != ls.len() => {
                            self.labels_consistent = false;
                            return;
                        }
                        Some(_) => {}
                    }
                    for (r, &v) in self.label_range.iter_mut().zip(ls) {
                        r.0 = r.0.min(v);
                        r.1 = r.1.max(v);
                    }
                }
                None => {
                    if self.labels_present {
                        self.labels_consistent = false;
                    }
                }
            }
            return;
        }
        match labels {
            Some(ls) => {
                match self.label_arity {
                    None => {
                        self.label_arity = Some(ls.len());
                        self.label_fitters = (0..ls.len())
                            .map(|_| OnlineAffineFitter::with_fast(self.dim, self.fast_fit))
                            .collect();
                        self.labels_present = true;
                    }
                    Some(a) if a != ls.len() => {
                        self.labels_consistent = false;
                        return;
                    }
                    Some(_) => {}
                }
                for (f, &v) in self.label_fitters.iter_mut().zip(ls) {
                    f.push(coords, v);
                }
            }
            None => {
                if self.labels_present {
                    self.labels_consistent = false;
                }
            }
        }
    }

    /// Close groups for dims `from..dim` against prefix `prev`.
    fn close_groups(&mut self, prev: &[i64], from: usize) {
        for k in (from.max(1)..self.dim).rev() {
            self.lb[k].push(&prev[..k], self.open_first[k]);
            self.ub[k].push(&prev[..k], self.open_last[k]);
        }
        if from == 0 && self.dim > 0 {
            self.lb[0].push(&[], self.open_first[0]);
            self.ub[0].push(&[], self.open_last[0]);
        }
    }

    /// Finalize: close open groups and assemble the folded result.
    pub fn finalize(mut self) -> FoldedStream {
        if self.has_prev && !self.coarse {
            let prev = std::mem::take(&mut self.prev_buf);
            self.close_groups(&prev, 0);
        }
        let mut poly = Polyhedron::universe(self.dim);
        let mut exact = self.monotone && !self.holes && !self.coarse;
        for k in 0..self.dim {
            let affine_pair = if self.coarse {
                None
            } else {
                match (self.lb[k].result(), self.ub[k].result()) {
                    (FitResult::Affine(l), FitResult::Affine(u)) => {
                        match (
                            rat_bound_to_expr(&l, k, self.dim),
                            rat_bound_to_expr(&u, k, self.dim),
                        ) {
                            (Some(le), Some(ue)) => Some((le, ue)),
                            _ => None,
                        }
                    }
                    _ => None,
                }
            };
            match affine_pair {
                Some((le, ue)) => {
                    poly.add_var_bounds(k, &le, &ue);
                }
                None => {
                    exact = false;
                    let lo = AffineExpr::constant(self.dim, self.box_lo[k]);
                    let hi = AffineExpr::constant(self.dim, self.box_hi[k]);
                    poly.add_var_bounds(k, &lo, &hi);
                }
            }
        }
        if self.count == 0 {
            exact = false;
        }
        let labels = if !self.labels_present {
            LabelFold::None
        } else if self.coarse {
            LabelFold::Range(self.label_range.clone())
        } else if !self.labels_consistent {
            LabelFold::Range(self.label_fitters.iter().map(|f| f.range()).collect())
        } else {
            let results: Vec<FitResult> = self.label_fitters.iter().map(|f| f.result()).collect();
            if results.iter().all(|r| matches!(r, FitResult::Affine(_))) {
                LabelFold::Affine(
                    results
                        .into_iter()
                        .map(|r| match r {
                            FitResult::Affine(a) => a,
                            _ => unreachable!(),
                        })
                        .collect(),
                )
            } else {
                LabelFold::Range(self.label_fitters.iter().map(|f| f.range()).collect())
            }
        };
        FoldedStream {
            domain: FoldedDomain {
                poly,
                exact,
                count: self.count,
                dim: self.dim,
                box_lo: self.box_lo,
                box_hi: self.box_hi,
            },
            labels,
        }
    }
}

/// Lift a bound over the first `k` variables to a `dim`-variable integer
/// affine expression (None if the fit has fractional coefficients).
fn rat_bound_to_expr(a: &RatAffine, k: usize, dim: usize) -> Option<AffineExpr> {
    if !a.is_integral() {
        return None;
    }
    let mut coeffs = vec![0i64; dim];
    for (i, c) in a.coeffs.iter().enumerate() {
        debug_assert!(i < k);
        coeffs[i] = c.num() as i64;
    }
    Some(AffineExpr::new(coeffs, a.c.num() as i64))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rectangular 2-D nest: exact fold into 0<=i<4 × 0<=j<3.
    #[test]
    fn rectangle_folds_exactly() {
        let mut f = StreamFolder::new(2);
        for i in 0..4 {
            for j in 0..3 {
                f.push(&[i, j], None);
            }
        }
        let r = f.finalize();
        assert!(r.domain.exact);
        assert_eq!(r.domain.count, 12);
        assert_eq!(r.domain.poly.count_points(100), Some(12));
        assert!(r.domain.poly.contains(&[3, 2]));
        assert!(!r.domain.poly.contains(&[4, 0]));
        assert_eq!(r.labels, LabelFold::None);
    }

    /// Triangular nest (j <= i): the inner upper bound is affine in i.
    #[test]
    fn triangle_folds_exactly() {
        let mut f = StreamFolder::new(2);
        for i in 0..6 {
            for j in 0..=i {
                f.push(&[i, j], None);
            }
        }
        let r = f.finalize();
        assert!(r.domain.exact, "triangular bounds are affine");
        assert_eq!(r.domain.poly.count_points(100), Some(21));
        assert!(r.domain.poly.contains(&[5, 5]));
        assert!(!r.domain.poly.contains(&[3, 4]));
    }

    /// Guarded statement (only even j): holes → over-approximation that
    /// still contains every point.
    #[test]
    fn holes_force_overapproximation() {
        let mut f = StreamFolder::new(2);
        for i in 0..4 {
            for j in (0..6).step_by(2) {
                f.push(&[i, j], None);
            }
        }
        let r = f.finalize();
        assert!(!r.domain.exact);
        for i in 0..4 {
            for j in (0..6).step_by(2) {
                assert!(r.domain.poly.contains(&[i, j]));
            }
        }
    }

    /// Non-monotone stream (same context re-executed): over-approximation.
    #[test]
    fn nonmonotone_is_absorbed() {
        let mut f = StreamFolder::new(1);
        for i in 0..5 {
            f.push(&[i], None);
        }
        for i in 0..5 {
            f.push(&[i], None);
        }
        let r = f.finalize();
        assert!(!r.domain.exact);
        assert_eq!(r.domain.count, 10);
        assert!(r.domain.poly.contains(&[4]));
        assert!(!r.domain.poly.contains(&[5]));
    }

    /// Labels: affine value recognition (the paper's I5: a(cj, ck) = ck+1).
    #[test]
    fn affine_labels_recognized() {
        let mut f = StreamFolder::new(2);
        for cj in 0..15 {
            for ck in 0..42 {
                f.push(&[cj, ck], Some(&[ck + 1]));
            }
        }
        let r = f.finalize();
        let LabelFold::Affine(ls) = &r.labels else {
            panic!("expected affine labels");
        };
        assert_eq!(ls.len(), 1);
        assert_eq!(ls[0].display(&["cj", "ck"]), "ck + 1");
    }

    /// Vector labels (dependence producer coordinates).
    #[test]
    fn vector_labels_fold_componentwise() {
        let mut f = StreamFolder::new(2);
        for i in 0..5 {
            for j in 0..5 {
                // producer = (i, j-1)
                f.push(&[i, j], Some(&[i, j - 1]));
            }
        }
        let r = f.finalize();
        let LabelFold::Affine(ls) = &r.labels else {
            panic!("expected affine");
        };
        assert_eq!(ls[0].display(&["i", "j"]), "i");
        assert_eq!(ls[1].display(&["i", "j"]), "j - 1");
    }

    /// Non-affine labels degrade to ranges, domain stays exact.
    #[test]
    fn nonaffine_labels_range() {
        let mut f = StreamFolder::new(1);
        for i in 0..8 {
            f.push(&[i], Some(&[i * i]));
        }
        let r = f.finalize();
        assert!(r.domain.exact);
        assert_eq!(r.labels, LabelFold::Range(vec![(0, 49)]));
    }

    /// Consecutive duplicates (twice-used operands) are deduplicated.
    #[test]
    fn duplicates_deduplicated() {
        let mut f = StreamFolder::new(1);
        for i in 0..4 {
            f.push(&[i], None);
            f.push(&[i], None);
        }
        let r = f.finalize();
        assert!(r.domain.exact);
        assert_eq!(r.domain.count, 4);
    }

    /// Lower bound affine in the outer dim: j from i..5 (ck' >= 1 pattern of
    /// the paper's Table 2 third row).
    #[test]
    fn affine_lower_bound() {
        let mut f = StreamFolder::new(2);
        for i in 0..5 {
            for j in i..5 {
                f.push(&[i, j], None);
            }
        }
        let r = f.finalize();
        assert!(r.domain.exact);
        assert_eq!(r.domain.poly.count_points(100), Some(15));
        assert!(!r.domain.poly.contains(&[3, 2]));
    }

    /// Depth-3 nest with mixed bounds folds exactly.
    #[test]
    fn depth3_exact() {
        let mut f = StreamFolder::new(3);
        let mut n = 0u64;
        for i in 0..4 {
            for j in 0..=i {
                for k in j..4 {
                    f.push(&[i, j, k], None);
                    n += 1;
                }
            }
        }
        let r = f.finalize();
        assert!(r.domain.exact);
        assert_eq!(r.domain.count, n);
        assert_eq!(r.domain.poly.count_points(1000), Some(n));
    }

    #[test]
    fn empty_stream() {
        let f = StreamFolder::new(2);
        let r = f.finalize();
        assert_eq!(r.domain.count, 0);
        assert!(!r.domain.exact);
    }

    #[test]
    fn single_point() {
        let mut f = StreamFolder::new(2);
        f.push(&[3, 7], Some(&[42]));
        let r = f.finalize();
        assert_eq!(r.domain.count, 1);
        assert!(r.domain.poly.contains(&[3, 7]));
        assert_eq!(r.domain.poly.count_points(10), Some(1));
        assert!(r.labels.is_affine());
    }

    /// Coarse mode is a sound superset: same count (dedup retained), box
    /// bounds contain every point, never exact.
    #[test]
    fn degraded_folder_is_superset_with_same_count() {
        let mut exact = StreamFolder::new(2);
        let mut coarse = StreamFolder::new(2);
        coarse.degrade();
        assert!(coarse.is_coarse());
        for i in 0..6 {
            for j in 0..=i {
                exact.push(&[i, j], Some(&[i + j]));
                coarse.push(&[i, j], Some(&[i + j]));
                // duplicates must dedup identically in both modes
                coarse.push(&[i, j], Some(&[i + j]));
            }
        }
        let re = exact.finalize();
        let rc = coarse.finalize();
        assert_eq!(rc.domain.count, re.domain.count);
        assert!(!rc.domain.exact);
        assert_eq!(rc.domain.box_lo, re.domain.box_lo);
        assert_eq!(rc.domain.box_hi, re.domain.box_hi);
        for i in 0..6 {
            for j in 0..=i {
                assert!(rc.domain.poly.contains(&[i, j]));
            }
        }
        assert_eq!(rc.labels, LabelFold::Range(vec![(0, 10)]));
    }

    /// Degrading mid-stream keeps ranges accumulated by the fitters.
    #[test]
    fn midstream_degrade_keeps_label_ranges() {
        let mut f = StreamFolder::new(1);
        for i in 0..4 {
            f.push(&[i], Some(&[i * 10]));
        }
        f.degrade();
        for i in 4..8 {
            f.push(&[i], Some(&[i * 10]));
        }
        let r = f.finalize();
        assert_eq!(r.domain.count, 8);
        assert!(!r.domain.exact);
        assert!(r.domain.poly.contains(&[0]) && r.domain.poly.contains(&[7]));
        assert_eq!(r.labels, LabelFold::Range(vec![(0, 70)]));
    }
}
