//! Intra-trace pipeline parallelism: one profiling run, many threads.
//!
//! The serial pass 2 does everything on the VM thread. [`fold_pipelined`]
//! splits that run into three stages connected by bounded channels:
//!
//! ```text
//!  VM thread            resolver thread          K folding workers
//! ┌───────────────┐    ┌──────────────────┐     ┌─────────────────┐
//! │ PreProfiler   │    │ ShadowResolver   │  ┌─▶│ FoldingSink #0  │
//! │  loop events  │ ch │  shadow memory   │ ch  ├─────────────────┤
//! │  IIV/interning├───▶│  dep resolution  ├──┼─▶│       ...       │
//! │  register deps│    │  ShardRouter     │  └─▶│ FoldingSink #K-1│
//! └───────────────┘    └──────────────────┘     └─────────────────┘
//!         unresolved events        resolved events, sharded by key
//! ```
//!
//! * Stage 1 is inherently sequential (the IIV and the interner follow the
//!   single control-flow trace); it batches events into
//!   [`EventChunk`]s.
//! * Stage 2 owns the shadow memory and emits resolved dependences.
//! * Stage 3 shards by folding key — statement id for points/accesses,
//!   *consumer* statement id for dependences — so each key's whole stream
//!   lands in exactly one [`FoldingSink`] partition, in serial order
//!   (single producer, FIFO channels). Per-shard folding state is therefore
//!   identical to the serial run, and [`FoldedDdg::merge_parts`] produces
//!   byte-identical output.
//!
//! All channels are bounded (`sync_channel`): a slow consumer backpressures
//! the VM instead of letting chunks pile up. Consumed chunks are recycled
//! through never-blocking return channels, preserving the zero-allocation
//! steady state inside every stage.

use crate::{FoldOptions, FoldedDdg, FoldingSink};
use polycfg::StaticStructure;
use polyddg::chunk::{ChunkWriter, EventChunk, EventRef};
use polyddg::pipeline::{PreProfiler, ShardRouter};
use polyddg::prune::PruneMask;
use polyddg::shadow::ShadowResolver;
use polyddg::{DdgConfig, FoldSink};
use polyiiv::context::ContextInterner;
use polyir::Program;
use polytrace::{Collector, Counter, PipeStage};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use std::time::Instant;

/// Knobs of one pipelined profiling run.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Folding worker count K (≥ 1). With the two stage threads this puts
    /// K + 2 threads on one trace.
    pub fold_threads: usize,
    /// Events per chunk — the batching granularity between stages.
    pub chunk_events: usize,
    /// Bounded-channel depth, in chunks, per edge (backpressure window).
    pub queue_chunks: usize,
    /// Folding options for every shard.
    pub options: FoldOptions,
    /// DDG tracking switches (must match the serial config being compared).
    pub ddg: DdgConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            fold_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            chunk_events: 4096,
            queue_chunks: 4,
            options: FoldOptions::default(),
            ddg: DdgConfig::default(),
        }
    }
}

fn join_or_propagate<T>(h: std::thread::ScopedJoinHandle<'_, T>, stage: &str) -> T {
    match h.join() {
        Ok(v) => v,
        Err(payload) => {
            // Keep the original payload (it names the failing workload /
            // assertion); the stage name goes to stderr for orientation.
            eprintln!("pipeline stage '{stage}' panicked");
            std::panic::resume_unwind(payload)
        }
    }
}

/// Run pass 2 as a parallel pipeline over an already-analyzed structure.
///
/// Semantically identical to the serial
/// `DdgProfiler<FoldingSink>` → `finalize` path (proven byte-identical by
/// the sharded differential suite); the work is spread over
/// `2 + fold_threads` threads.
pub fn fold_pipelined(
    prog: &Program,
    structure: &StaticStructure,
    cfg: &PipelineConfig,
) -> (FoldedDdg, ContextInterner) {
    fold_pipelined_traced(prog, structure, cfg, None)
}

/// One timed (or plain) bounded-channel receive; `None` on disconnect.
#[inline]
fn recv_timed(rx: &Receiver<EventChunk>, timing: bool, stall_ns: &mut u64) -> Option<EventChunk> {
    if timing {
        let t0 = Instant::now();
        let r = rx.recv().ok();
        *stall_ns += t0.elapsed().as_nanos() as u64;
        r
    } else {
        rx.recv().ok()
    }
}

/// As [`fold_pipelined`], optionally recording into a `polytrace`
/// [`Collector`]: per-stage-thread spans, per-shard fold counts, chunk-pool
/// and channel gauges, and the hot-path tallies (harvested once per stage —
/// the per-event path stays atomic-free).
pub fn fold_pipelined_traced(
    prog: &Program,
    structure: &StaticStructure,
    cfg: &PipelineConfig,
    trace: Option<&Arc<Collector>>,
) -> (FoldedDdg, ContextInterner) {
    let (ddg, interner, _) = fold_pipelined_pruned(prog, structure, cfg, trace, None);
    (ddg, interner)
}

/// As [`fold_pipelined_traced`], with an optional static prune mask
/// installed on the stage-1 profiler (see `polyddg::prune`). The third
/// return value is the number of register-dependence events skipped by the
/// mask — zero when `prune` is `None`.
pub fn fold_pipelined_pruned(
    prog: &Program,
    structure: &StaticStructure,
    cfg: &PipelineConfig,
    trace: Option<&Arc<Collector>>,
    prune: Option<Arc<PruneMask>>,
) -> (FoldedDdg, ContextInterner, u64) {
    let k = cfg.fold_threads.max(1);
    let chunk_events = cfg.chunk_events.max(1);
    let queue = cfg.queue_chunks.max(1);
    let ddg_cfg = cfg.ddg;
    let options = cfg.options;

    let (shards, interner, pruned_events) = std::thread::scope(|s| {
        // Stage 1 → stage 2 edge.
        let (pre_tx, pre_rx) = sync_channel::<EventChunk>(queue);
        let (pre_pool_tx, pre_pool_rx) = sync_channel::<EventChunk>(queue + 2);

        // Stage 2 → stage 3 edges, one pair per shard.
        let mut shard_writers = Vec::with_capacity(k);
        let mut shard_ends = Vec::with_capacity(k);
        for _ in 0..k {
            let (tx, rx) = sync_channel::<EventChunk>(queue);
            let (pool_tx, pool_rx) = sync_channel::<EventChunk>(queue + 2);
            shard_writers.push(ChunkWriter::new(chunk_events, tx, pool_rx));
            shard_ends.push((rx, pool_tx));
        }

        let trace_pre = trace.cloned();
        let producer = s.spawn(move || {
            let _span = trace_pre
                .as_ref()
                .map(|c| c.pipe_span(PipeStage::PreProfile));
            let mut writer = ChunkWriter::new(chunk_events, pre_tx, pre_pool_rx);
            if let Some(c) = &trace_pre {
                writer.set_trace(Arc::clone(c), 0);
            }
            let mut prof = PreProfiler::with_config(prog, structure, writer, ddg_cfg);
            if let Some(m) = prune {
                prof.set_prune_mask(m);
            }
            polyvm::Vm::new(prog)
                .run(&[], &mut prof)
                .expect("pass-2 execution failed");
            if let Some(c) = &trace_pre {
                c.add(Counter::DynOps, prof.dyn_ops);
                c.add(Counter::MemEvents, prof.mem_events);
                c.add(Counter::PrunedEvents, prof.pruned_events);
                let (hits, misses) = prof.interner.cache_stats();
                c.add(Counter::CtxCacheHit, hits);
                c.add(Counter::CtxCacheMiss, misses);
            }
            let pruned_events = prof.pruned_events;
            let (writer, interner) = prof.finish();
            let stats = writer.finish();
            if let Some(c) = &trace_pre {
                ChunkWriter::harvest(&stats, c, Counter::EventsEmitted);
            }
            (interner, pruned_events)
        });

        let trace_res = trace.cloned();
        let resolver = s.spawn(move || {
            let _span = trace_res
                .as_ref()
                .map(|c| c.pipe_span(PipeStage::ShadowResolve));
            let timing = trace_res.as_ref().is_some_and(|c| c.timing());
            let mut shadow = ShadowResolver::new(ddg_cfg);
            let mut router = ShardRouter::new(shard_writers);
            if let Some(c) = &trace_res {
                router.set_trace(c);
            }
            let mut resolved = 0u64;
            let mut recv_stall = 0u64;
            while let Some(mut chunk) = recv_timed(&pre_rx, timing, &mut recv_stall) {
                if let Some(c) = &trace_res {
                    c.queue_recv(0);
                }
                for ev in chunk.events() {
                    match ev {
                        EventRef::Point {
                            stmt,
                            coords,
                            value,
                        } => router.instr_point(stmt, coords, value),
                        EventRef::Dep {
                            kind,
                            src,
                            src_coords,
                            dst,
                            dst_coords,
                        } => router.dependence(kind, src, src_coords, dst, dst_coords),
                        EventRef::Access {
                            stmt,
                            coords,
                            addr,
                            is_write,
                        } => router.mem_access(stmt, coords, addr, is_write),
                        EventRef::MemPre {
                            stmt,
                            coords,
                            addr,
                            is_write,
                        } => {
                            resolved += 1;
                            shadow.resolve(stmt, coords, addr, is_write, &mut router);
                        }
                    }
                }
                chunk.clear();
                // Recycling never blocks: a full pool just drops the chunk.
                let _ = pre_pool_tx.try_send(chunk);
            }
            let stats = router.finish();
            if let Some(c) = &trace_res {
                c.add(Counter::EventsResolved, resolved);
                c.add(Counter::RecvStallNs, recv_stall);
                ChunkWriter::harvest(&stats, c, Counter::EventsRouted);
                let (hits, misses) = shadow.mru_stats();
                c.add(Counter::ShadowMruHit, hits);
                c.add(Counter::ShadowMruMiss, misses);
                c.add(Counter::ShadowPages, shadow.resident_pages() as u64);
            }
        });

        let workers: Vec<_> = shard_ends
            .into_iter()
            .enumerate()
            .map(|(shard, (rx, pool_tx))| {
                let trace_w = trace.cloned();
                s.spawn(move || {
                    let _span = trace_w.as_ref().map(|c| c.shard_span(shard));
                    let timing = trace_w.as_ref().is_some_and(|c| c.timing());
                    let mut sink = FoldingSink::with_options(options);
                    let mut recv_stall = 0u64;
                    while let Some(mut chunk) = recv_timed(&rx, timing, &mut recv_stall) {
                        if let Some(c) = &trace_w {
                            c.queue_recv(1 + shard);
                        }
                        chunk.replay_into(&mut sink);
                        chunk.clear();
                        let _ = pool_tx.try_send(chunk);
                    }
                    if let Some(c) = &trace_w {
                        let fs = sink.fold_stats();
                        // Registers the shard slot even at zero events, so
                        // shard balance sees every configured shard.
                        c.record_shard_events(shard, fs.events_folded);
                        c.add(Counter::EventsFolded, fs.events_folded);
                        c.add(Counter::DepsFolded, fs.deps_folded);
                        c.add(Counter::DepMruHit, fs.dep_mru_hits);
                        c.add(Counter::DepMruMiss, fs.dep_mru_misses);
                        c.add(Counter::RecvStallNs, recv_stall);
                    }
                    sink
                })
            })
            .collect();

        let (interner, pruned_events) = join_or_propagate(producer, "event generation");
        join_or_propagate(resolver, "shadow resolution");
        let shards: Vec<FoldingSink> = workers
            .into_iter()
            .map(|h| join_or_propagate(h, "folding"))
            .collect();
        (shards, interner, pruned_events)
    });

    let ddg = {
        let _span = trace.map(|c| c.pipe_span(PipeStage::Merge));
        finalize_shards(shards, prog, &interner)
    };
    (ddg, interner, pruned_events)
}

/// Finalize every shard in parallel (the vendored rayon stand-in has no
/// owned `into_par_iter`, hence the one-element-chunk option dance), then
/// merge deterministically.
fn finalize_shards(
    shards: Vec<FoldingSink>,
    prog: &Program,
    interner: &ContextInterner,
) -> FoldedDdg {
    use rayon::prelude::*;
    let mut slots: Vec<Option<FoldingSink>> = shards.into_iter().map(Some).collect();
    let mut parts: Vec<Option<FoldedDdg>> =
        std::iter::repeat_with(|| None).take(slots.len()).collect();
    slots
        .par_chunks_mut(1)
        .zip(parts.par_chunks_mut(1))
        .for_each(|(slot, part)| {
            let sink = slot[0].take().expect("shard present");
            part[0] = Some(sink.finalize(prog, interner));
        });
    FoldedDdg::merge_parts(parts.into_iter().flatten())
}

/// Pipelined sibling of [`fold_program`](crate::fold_program): pass 1
/// (structure) then the staged pass 2.
pub fn fold_program_pipelined(
    prog: &Program,
    cfg: &PipelineConfig,
) -> (FoldedDdg, ContextInterner, StaticStructure) {
    let mut rec = polycfg::StructureRecorder::new();
    polyvm::Vm::new(prog)
        .run(&[], &mut rec)
        .expect("pass-1 execution failed");
    let structure = StaticStructure::analyze(prog, rec);
    let (ddg, interner) = fold_pipelined(prog, &structure, cfg);
    (ddg, interner, structure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold_program;
    use polyir::build::ProgramBuilder;

    fn stencil_prog() -> Program {
        let mut pb = ProgramBuilder::new("t");
        let base = pb.alloc(64);
        let mut f = pb.func("main", 0);
        f.for_loop("T", 0i64, 3i64, 1, |f, _t| {
            f.for_loop("L", 1i64, 30i64, 1, |f, i| {
                let prev = f.load(base as i64, i);
                let im1 = f.add(i, -1i64);
                let left = f.load(base as i64, im1);
                let v = f.add(prev, left);
                f.store(base as i64, i, v);
            });
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        pb.finish()
    }

    /// Smallest possible end-to-end check: shard counts and chunk sizes must
    /// not change any folded fact (the full byte-compare lives in
    /// tests/sharded.rs).
    #[test]
    fn pipelined_matches_serial_counts() {
        let p = stencil_prog();
        let (serial, _, _) = fold_program(&p);
        for k in [1usize, 3] {
            let cfg = PipelineConfig {
                fold_threads: k,
                chunk_events: 16, // tiny chunks: exercise flush boundaries
                ..Default::default()
            };
            let (piped, _, _) = fold_program_pipelined(&p, &cfg);
            assert_eq!(piped.total_ops, serial.total_ops, "k={k}");
            assert_eq!(piped.n_stmts(), serial.n_stmts(), "k={k}");
            assert_eq!(piped.deps.len(), serial.deps.len(), "k={k}");
            assert_eq!(piped.accesses.len(), serial.accesses.len(), "k={k}");
            let aff_s = serial.affine_fraction();
            let aff_p = piped.affine_fraction();
            assert!((aff_s - aff_p).abs() < 1e-12, "k={k}");
        }
    }

    /// A panic inside a stage must reach the caller with its payload.
    #[test]
    fn stage_panic_propagates() {
        let p = stencil_prog();
        let res = std::panic::catch_unwind(|| {
            let cfg = PipelineConfig {
                fold_threads: 1,
                chunk_events: 0, // clamped to 1 — still valid
                ..Default::default()
            };
            // Sanity: a valid run inside catch_unwind works.
            let _ = fold_program_pipelined(&p, &cfg);
            panic!("deliberate: payload must survive");
        });
        let payload = res.expect_err("panic expected");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("deliberate"), "payload lost");
    }
}
