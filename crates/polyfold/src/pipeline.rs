//! Intra-trace pipeline parallelism: one profiling run, many threads.
//!
//! The serial pass 2 does everything on the VM thread. [`fold_pipelined`]
//! splits that run into three stages connected by bounded channels:
//!
//! ```text
//!  VM thread            resolver thread          K folding workers
//! ┌───────────────┐    ┌──────────────────┐     ┌─────────────────┐
//! │ PreProfiler   │    │ ShadowResolver   │  ┌─▶│ FoldingSink #0  │
//! │  loop events  │ ch │  shadow memory   │ ch  ├─────────────────┤
//! │  IIV/interning├───▶│  dep resolution  ├──┼─▶│       ...       │
//! │  register deps│    │  ShardRouter     │  └─▶│ FoldingSink #K-1│
//! └───────────────┘    └──────────────────┘     └─────────────────┘
//!         unresolved events        resolved events, sharded by key
//! ```
//!
//! * Stage 1 is inherently sequential (the IIV and the interner follow the
//!   single control-flow trace); it batches events into
//!   [`EventChunk`]s.
//! * Stage 2 owns the shadow memory and emits resolved dependences.
//! * Stage 3 shards by folding key — statement id for points/accesses,
//!   *consumer* statement id for dependences — so each key's whole stream
//!   lands in exactly one [`FoldingSink`] partition, in serial order
//!   (single producer, FIFO channels). Per-shard folding state is therefore
//!   identical to the serial run, and [`FoldedDdg::merge_parts`] produces
//!   byte-identical output.
//!
//! All channels are bounded (`sync_channel`): a slow consumer backpressures
//! the VM instead of letting chunks pile up. Consumed chunks are recycled
//! through never-blocking return channels, preserving the zero-allocation
//! steady state inside every stage.
//!
//! ## Supervision
//!
//! Every stage thread runs its body under `catch_unwind`, so a panic in any
//! stage is converted into a structured [`PolyProfError`] instead of
//! poisoning the scope. Unwinding drops the stage's channel endpoints, which
//! unblocks its peers: a dead consumer makes the producer's sends error out
//! (counted as dropped chunks by [`ChunkWriter`]), and a dead producer makes
//! `recv` disconnect — no fault can deadlock the pipeline.
//!
//! [`fold_pipelined_supervised`] layers policy on top:
//!
//! * a dead *folding worker* only loses its shard — the surviving shards are
//!   merged with [`FoldedDdg::merge_parts_tolerant`] and the lost shard ids
//!   are recorded in the [`RunDegradation`];
//! * a dead *producer or resolver* (or the loss of every shard) fails the
//!   attempt, which is retried with linear backoff. [`FaultPlan`] occurrence
//!   counters keep counting across attempts, so a one-shot injected fault
//!   does not re-fire on retry;
//! * after `max_retries` failed attempts the run falls back to the retained
//!   serial `DdgProfiler` path (no fault hooks — the trusted baseline),
//!   still honoring the resource budget.
//!
//! With no fault plan and no budget armed, every hook is a skipped `None`
//! branch and the supervised path is event-for-event identical to
//! [`fold_pipelined`].

use crate::{ChunkScratch, FoldOptions, FoldedDdg, FoldingSink};
use polycfg::StaticStructure;
use polyddg::chunk::{ChunkStats, ChunkWriter, EventChunk, EventRef};
use polyddg::pipeline::{PreProfiler, ShardRouter};
use polyddg::prune::PruneMask;
use polyddg::shadow::ShadowResolver;
use polyddg::{DdgConfig, DdgProfiler, FoldSink};
use polyiiv::context::ContextInterner;
use polyir::Program;
use polyrec::{Recorder, TraceWriter};
use polyresist::{panic_msg, FaultPlan, FaultSite, PolyProfError, ResourceBudget, RunDegradation};
use polytrace::{
    tid_shard, Collector, Counter, HistKind, Histogram, Journal, PipeStage, Stage, TID_DRIVER,
    TID_RESOLVE,
};
use std::fs::File;
use std::io::BufWriter;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Knobs of one pipelined profiling run.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Folding worker count K (≥ 1). With the two stage threads this puts
    /// K + 2 threads on one trace.
    pub fold_threads: usize,
    /// Events per chunk — the batching granularity between stages.
    pub chunk_events: usize,
    /// Bounded-channel depth, in chunks, per edge (backpressure window).
    pub queue_chunks: usize,
    /// Folding options for every shard.
    pub options: FoldOptions,
    /// DDG tracking switches (must match the serial config being compared).
    pub ddg: DdgConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            fold_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            chunk_events: 4096,
            queue_chunks: 4,
            options: FoldOptions::default(),
            ddg: DdgConfig::default(),
        }
    }
}

/// Supervision policy and resilience hooks for one profiling run.
///
/// The default is fully disarmed: no fault plan, no budget, and the
/// supervised path behaves exactly like the plain pipelined one (panics are
/// still caught and retried — genuine transient failures recover too).
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Deterministic fault-injection schedule (tests / resilience gate).
    pub faults: Option<Arc<FaultPlan>>,
    /// Shared byte/deadline budget; stages degrade instead of aborting.
    pub budget: Option<Arc<ResourceBudget>>,
    /// Failed pipeline attempts to retry before the serial fallback.
    pub max_retries: u32,
    /// Base backoff between attempts (scaled linearly by attempt number).
    pub backoff: Duration,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            faults: None,
            budget: None,
            max_retries: 2,
            backoff: Duration::from_millis(25),
        }
    }
}

/// Run pass 2 as a parallel pipeline over an already-analyzed structure.
///
/// Semantically identical to the serial
/// `DdgProfiler<FoldingSink>` → `finalize` path (proven byte-identical by
/// the sharded differential suite); the work is spread over
/// `2 + fold_threads` threads.
pub fn fold_pipelined(
    prog: &Program,
    structure: &StaticStructure,
    cfg: &PipelineConfig,
) -> (FoldedDdg, ContextInterner) {
    fold_pipelined_traced(prog, structure, cfg, None)
}

/// One timed (or plain) bounded-channel receive; `None` on disconnect.
/// With a histogram attached, each individual stall also lands in it
/// (feeding the p50/p99 recv-stall distribution; the sum feeds the counter).
#[inline]
fn recv_timed(
    rx: &Receiver<EventChunk>,
    timing: bool,
    stall_ns: &mut u64,
    hist: Option<&mut Histogram>,
) -> Option<EventChunk> {
    if timing {
        let t0 = Instant::now();
        let r = rx.recv().ok();
        let dt = t0.elapsed().as_nanos() as u64;
        *stall_ns += dt;
        if let Some(h) = hist {
            h.record(dt);
        }
        r
    } else {
        rx.recv().ok()
    }
}

/// As [`fold_pipelined`], optionally recording into a `polytrace`
/// [`Collector`]: per-stage-thread spans, per-shard fold counts, chunk-pool
/// and channel gauges, and the hot-path tallies (harvested once per stage —
/// the per-event path stays atomic-free).
pub fn fold_pipelined_traced(
    prog: &Program,
    structure: &StaticStructure,
    cfg: &PipelineConfig,
    trace: Option<&Arc<Collector>>,
) -> (FoldedDdg, ContextInterner) {
    let (ddg, interner, _) = fold_pipelined_pruned(prog, structure, cfg, trace, None);
    (ddg, interner)
}

/// As [`fold_pipelined_traced`], with an optional static prune mask
/// installed on the stage-1 profiler (see `polyddg::prune`). The third
/// return value is the number of register-dependence events skipped by the
/// mask — zero when `prune` is `None`.
pub fn fold_pipelined_pruned(
    prog: &Program,
    structure: &StaticStructure,
    cfg: &PipelineConfig,
    trace: Option<&Arc<Collector>>,
    prune: Option<Arc<PruneMask>>,
) -> (FoldedDdg, ContextInterner, u64) {
    match fold_attempt(prog, structure, cfg, trace, prune, None, None, None) {
        Ok(ok) => {
            let (ddg, missing) = {
                let _span = trace.map(|c| c.pipe_span(PipeStage::Merge));
                finalize_shards_tolerant(ok.shards, prog, &ok.interner)
            };
            debug_assert!(missing.is_empty(), "fault-free run lost shards {missing:?}");
            (ddg, ok.interner, ok.pruned_events)
        }
        Err(e) => panic!("{e}"),
    }
}

/// Everything a successful pipeline attempt produced, before shard
/// finalization: the (possibly gap-ridden) shard sinks plus the loss
/// accounting the supervisor folds into the [`RunDegradation`].
struct AttemptOk {
    shards: Vec<Option<FoldingSink>>,
    interner: ContextInterner,
    pruned_events: u64,
    dropped_chunks: u64,
    malformed_chunks: u64,
    unresolved: u64,
    alloc_failures: u64,
    deadline_hit: bool,
    /// `(shard, error)` for workers that died without emitting a sink.
    lost_workers: Vec<(usize, String)>,
}

/// The resolver's chunk loop, generic over the resolved-event sink so the
/// recording tap composes without touching the non-recording hot path (a
/// plain [`ShardRouter`] run monomorphizes exactly as before). Returns
/// `(resolved mem events, recv-stall ns)`.
#[allow(clippy::too_many_arguments)]
fn resolve_loop<S: FoldSink>(
    pre_rx: &Receiver<EventChunk>,
    pre_pool_tx: &SyncSender<EventChunk>,
    trace: Option<&Arc<Collector>>,
    faults: Option<&Arc<FaultPlan>>,
    timing: bool,
    mut stall_hist: Option<&mut Histogram>,
    mut journal: Option<&mut Journal>,
    shadow: &mut polyddg::shadow::ShadowResolver,
    sink: &mut S,
) -> (u64, u64) {
    let mut resolved = 0u64;
    let mut recv_stall = 0u64;
    let mut seq = 0u64;
    while let Some(mut chunk) =
        recv_timed(pre_rx, timing, &mut recv_stall, stall_hist.as_deref_mut())
    {
        let opened = journal
            .as_deref_mut()
            .is_some_and(|j| j.begin("resolve-chunk", 0, seq));
        if let Some(c) = trace {
            c.queue_recv(0);
        }
        if let Some(p) = faults {
            if p.should_fire(FaultSite::PanicResolve) {
                panic!("injected fault: shadow-resolver panic");
            }
        }
        for ev in chunk.events() {
            match ev {
                EventRef::Point {
                    stmt,
                    coords,
                    value,
                } => sink.instr_point(stmt, coords, value),
                EventRef::Dep {
                    kind,
                    src,
                    src_coords,
                    dst,
                    dst_coords,
                } => sink.dependence(kind, src, src_coords, dst, dst_coords),
                EventRef::Access {
                    stmt,
                    coords,
                    addr,
                    is_write,
                } => sink.mem_access(stmt, coords, addr, is_write),
                EventRef::MemPre {
                    stmt,
                    coords,
                    addr,
                    is_write,
                } => {
                    resolved += 1;
                    shadow.resolve(stmt, coords, addr, is_write, sink);
                }
            }
        }
        chunk.clear();
        // Recycling never blocks: a full pool just drops the chunk.
        let _ = pre_pool_tx.try_send(chunk);
        if let Some(j) = journal.as_deref_mut() {
            j.end(opened, "resolve-chunk", 0, seq);
        }
        seq += 1;
    }
    (resolved, recv_stall)
}

/// One supervised pipeline attempt. Stage threads never poison the scope:
/// each body runs under `catch_unwind` and surfaces panics as
/// [`PolyProfError::StagePanic`]. A producer/resolver error — or the loss of
/// every folding worker — fails the attempt; losing *some* workers only
/// punches holes in `shards`.
///
/// With `record` set, the resolver taps its resolved stream through a
/// [`Recorder`] into a `.ptrace` file; the footer (which needs the
/// producer's interner) is written after the stage threads join, so a failed
/// attempt leaves a detectably unfinished recording behind.
#[allow(clippy::too_many_arguments)]
fn fold_attempt(
    prog: &Program,
    structure: &StaticStructure,
    cfg: &PipelineConfig,
    trace: Option<&Arc<Collector>>,
    prune: Option<Arc<PruneMask>>,
    faults: Option<&Arc<FaultPlan>>,
    budget: Option<&Arc<ResourceBudget>>,
    record: Option<&Path>,
) -> Result<AttemptOk, PolyProfError> {
    let k = cfg.fold_threads.max(1);
    let chunk_events = cfg.chunk_events.max(1);
    let queue = cfg.queue_chunks.max(1);
    let ddg_cfg = cfg.ddg;
    let options = cfg.options;

    let (prod, res, work) = std::thread::scope(|s| {
        // Stage 1 → stage 2 edge.
        let (pre_tx, pre_rx) = sync_channel::<EventChunk>(queue);
        let (pre_pool_tx, pre_pool_rx) = sync_channel::<EventChunk>(queue + 2);

        // Stage 2 → stage 3 edges, one pair per shard.
        let mut shard_writers = Vec::with_capacity(k);
        let mut shard_ends = Vec::with_capacity(k);
        for _ in 0..k {
            let (tx, rx) = sync_channel::<EventChunk>(queue);
            let (pool_tx, pool_rx) = sync_channel::<EventChunk>(queue + 2);
            shard_writers.push(ChunkWriter::new(chunk_events, tx, pool_rx));
            shard_ends.push((rx, pool_tx));
        }

        let trace_pre = trace.cloned();
        let faults_pre = faults.cloned();
        let budget_pre = budget.cloned();
        let producer = s.spawn(move || {
            let body =
                move || -> Result<(ContextInterner, u64, ChunkStats, bool), PolyProfError> {
                    let _span = trace_pre
                        .as_ref()
                        .map(|c| c.pipe_span(PipeStage::PreProfile));
                    let mut writer = ChunkWriter::new(chunk_events, pre_tx, pre_pool_rx);
                    if let Some(c) = &trace_pre {
                        writer.set_trace(Arc::clone(c), 0);
                    }
                    let mut prof = PreProfiler::with_config(prog, structure, writer, ddg_cfg);
                    if let Some(m) = prune {
                        prof.set_prune_mask(m);
                    }
                    if let Some(p) = faults_pre {
                        prof.set_faults(p);
                    }
                    if let Some(b) = budget_pre {
                        prof.set_budget(b);
                    }
                    let mut vm = polyvm::Vm::new(prog);
                    if let Some(c) = &trace_pre {
                        if c.timing() {
                            vm.enable_opcode_telemetry(c.tracing());
                        }
                    }
                    let deadline_hit = match vm.run(&[], &mut prof) {
                        Ok(_) => false,
                        // The budget watchdog asked for a graceful stop: flush
                        // what we have — downstream finalizes partial results.
                        Err(polyvm::VmError::Aborted) => true,
                        Err(e) => {
                            return Err(PolyProfError::Vm {
                                stage: "pass-2",
                                msg: e.to_string(),
                            })
                        }
                    };
                    if let Some(c) = &trace_pre {
                        if let Some(t) = vm.take_opcode_telemetry() {
                            t.harvest(c);
                        }
                        c.add(Counter::DynOps, prof.dyn_ops);
                        c.add(Counter::MemEvents, prof.mem_events);
                        c.add(Counter::PrunedEvents, prof.pruned_events);
                        let (hits, misses) = prof.interner.cache_stats();
                        c.add(Counter::CtxCacheHit, hits);
                        c.add(Counter::CtxCacheMiss, misses);
                    }
                    let pruned_events = prof.pruned_events;
                    let (writer, interner) = prof.finish();
                    let stats = writer.finish();
                    if let Some(c) = &trace_pre {
                        ChunkWriter::harvest(&stats, c, Counter::EventsEmitted);
                    }
                    Ok((interner, pruned_events, stats, deadline_hit))
                };
            catch_unwind(AssertUnwindSafe(body)).unwrap_or_else(|p| {
                Err(PolyProfError::StagePanic {
                    stage: "pre",
                    msg: panic_msg(&*p),
                })
            })
        });

        let trace_res = trace.cloned();
        let faults_res = faults.cloned();
        let budget_res = budget.cloned();
        let record_path: Option<PathBuf> = record.map(Path::to_path_buf);
        type ResolverOut = (ChunkStats, u64, u64, Option<TraceWriter<BufWriter<File>>>);
        let resolver = s.spawn(move || {
            let body = move || -> Result<ResolverOut, PolyProfError> {
                let _span = trace_res
                    .as_ref()
                    .map(|c| c.pipe_span(PipeStage::ShadowResolve));
                let timing = trace_res.as_ref().is_some_and(|c| c.timing());
                let mut stall_hist = Histogram::new();
                let mut journal = trace_res.as_ref().and_then(|c| c.new_journal(TID_RESOLVE));
                let mut shadow = ShadowResolver::new(ddg_cfg);
                if let Some(p) = &faults_res {
                    shadow.set_faults(Arc::clone(p));
                }
                if let Some(b) = &budget_res {
                    shadow.set_budget(Arc::clone(b));
                }
                let mut router = ShardRouter::new(shard_writers);
                if let Some(c) = &trace_res {
                    router.set_trace(c);
                }
                if let Some(p) = &faults_res {
                    router.set_faults(p);
                }
                let (stats, resolved, recv_stall, rec_writer) = match &record_path {
                    Some(path) => {
                        let writer = TraceWriter::create(path, prog, chunk_events)?;
                        let mut tap = Recorder::new(writer, chunk_events, router);
                        let (resolved, recv_stall) = resolve_loop(
                            &pre_rx,
                            &pre_pool_tx,
                            trace_res.as_ref(),
                            faults_res.as_ref(),
                            timing,
                            Some(&mut stall_hist),
                            journal.as_mut(),
                            &mut shadow,
                            &mut tap,
                        );
                        let (router, writer) = tap.into_writer()?;
                        (router.finish(), resolved, recv_stall, Some(writer))
                    }
                    None => {
                        let (resolved, recv_stall) = resolve_loop(
                            &pre_rx,
                            &pre_pool_tx,
                            trace_res.as_ref(),
                            faults_res.as_ref(),
                            timing,
                            Some(&mut stall_hist),
                            journal.as_mut(),
                            &mut shadow,
                            &mut router,
                        );
                        (router.finish(), resolved, recv_stall, None)
                    }
                };
                if let Some(c) = &trace_res {
                    c.add(Counter::EventsResolved, resolved);
                    c.add(Counter::RecvStallNs, recv_stall);
                    c.add(Counter::RecvStallThreads, 1);
                    ChunkWriter::harvest(&stats, c, Counter::EventsRouted);
                    let (hits, misses) = shadow.mru_stats();
                    c.add(Counter::ShadowMruHit, hits);
                    c.add(Counter::ShadowMruMiss, misses);
                    c.add(Counter::ShadowPages, shadow.resident_pages() as u64);
                    c.merge_hist(HistKind::RecvStallNs, &stall_hist);
                    if let Some(j) = journal {
                        c.submit_journal(j);
                    }
                }
                Ok((
                    stats,
                    shadow.unresolved(),
                    shadow.alloc_failures(),
                    rec_writer,
                ))
            };
            catch_unwind(AssertUnwindSafe(body)).unwrap_or_else(|p| {
                Err(PolyProfError::StagePanic {
                    stage: "resolve",
                    msg: panic_msg(&*p),
                })
            })
        });

        let workers: Vec<_> = shard_ends
            .into_iter()
            .enumerate()
            .map(|(shard, (rx, pool_tx))| {
                let trace_w = trace.cloned();
                let faults_w = faults.cloned();
                let budget_w = budget.cloned();
                s.spawn(move || {
                    let body = move || -> Result<(FoldingSink, u64), PolyProfError> {
                        let _span = trace_w.as_ref().map(|c| c.shard_span(shard));
                        let timing = trace_w.as_ref().is_some_and(|c| c.timing());
                        let mut fold_hist = Histogram::new();
                        let mut stall_hist = Histogram::new();
                        let mut journal = trace_w
                            .as_ref()
                            .and_then(|c| c.new_journal(tid_shard(shard)));
                        let mut seq = 0u64;
                        let mut sink = FoldingSink::with_options(options);
                        if let Some(b) = &budget_w {
                            sink.set_budget(Arc::clone(b));
                        }
                        let mut malformed = 0u64;
                        let mut recv_stall = 0u64;
                        let mut scratch = ChunkScratch::default();
                        while let Some(mut chunk) =
                            recv_timed(&rx, timing, &mut recv_stall, Some(&mut stall_hist))
                        {
                            if let Some(c) = &trace_w {
                                c.queue_recv(1 + shard);
                            }
                            if let Some(p) = &faults_w {
                                if p.should_fire(FaultSite::PanicFold) {
                                    panic!("injected fault: folding worker panic (shard {shard})");
                                }
                                // Validation runs only under an armed plan:
                                // production chunks come from our own writer
                                // and the check would tax the hot path.
                                if chunk.validate().is_err() {
                                    malformed += 1;
                                    chunk.clear();
                                    let _ = pool_tx.try_send(chunk);
                                    continue;
                                }
                            }
                            let opened = journal
                                .as_mut()
                                .is_some_and(|j| j.begin("fold-chunk", shard as u64, seq));
                            let t0 = timing.then(Instant::now);
                            sink.fold_chunk(&chunk, &mut scratch);
                            if let Some(t0) = t0 {
                                fold_hist.record(t0.elapsed().as_nanos() as u64);
                            }
                            if let Some(j) = journal.as_mut() {
                                j.end(opened, "fold-chunk", shard as u64, seq);
                            }
                            seq += 1;
                            chunk.clear();
                            let _ = pool_tx.try_send(chunk);
                        }
                        if let Some(c) = &trace_w {
                            let fs = sink.fold_stats();
                            // Registers the shard slot even at zero events, so
                            // shard balance sees every configured shard.
                            c.record_shard_events(shard, fs.events_folded);
                            c.add(Counter::EventsFolded, fs.events_folded);
                            c.add(Counter::DepsFolded, fs.deps_folded);
                            c.add(Counter::ChunksFolded, fs.chunks_folded);
                            c.add(Counter::RecvStallNs, recv_stall);
                            c.add(Counter::RecvStallThreads, 1);
                            c.merge_hist(HistKind::FoldChunkNs, &fold_hist);
                            c.merge_hist(HistKind::RecvStallNs, &stall_hist);
                            if let Some(j) = journal {
                                c.submit_journal(j);
                            }
                        }
                        Ok((sink, malformed))
                    };
                    catch_unwind(AssertUnwindSafe(body)).unwrap_or_else(|p| {
                        Err(PolyProfError::StagePanic {
                            stage: "fold",
                            msg: panic_msg(&*p),
                        })
                    })
                })
            })
            .collect();

        let prod = producer.join().expect("supervised stage never panics");
        let res = resolver.join().expect("supervised stage never panics");
        let work: Vec<_> = workers
            .into_iter()
            .map(|h| h.join().expect("supervised stage never panics"))
            .collect();
        (prod, res, work)
    });

    // Producer/resolver failures are unrecoverable within the attempt: the
    // event stream itself is incomplete in a way no shard merge can repair.
    let (interner, pruned_events, pre_stats, deadline_hit) = prod?;
    let (route_stats, unresolved, alloc_failures, rec_writer) = res?;

    // The recording's footer needs the interner (statement table), which
    // only exists once the producer has joined — write it now. A failure
    // here fails the attempt: a footer-less recording is useless.
    if let Some(writer) = rec_writer {
        let stats = writer.finish(&interner)?;
        if let Some(c) = trace {
            c.add(Counter::RecFramesWritten, stats.frames);
            c.add(Counter::RecBytesWritten, stats.bytes);
        }
    }

    let mut shards: Vec<Option<FoldingSink>> = Vec::with_capacity(k);
    let mut lost_workers = Vec::new();
    let mut malformed_chunks = 0u64;
    for (shard, r) in work.into_iter().enumerate() {
        match r {
            Ok((sink, malformed)) => {
                malformed_chunks += malformed;
                shards.push(Some(sink));
            }
            Err(e) => {
                lost_workers.push((shard, e.to_string()));
                shards.push(None);
            }
        }
    }
    if shards.iter().all(Option::is_none) {
        let (_, msg) = lost_workers.pop().expect("k >= 1");
        return Err(PolyProfError::StagePanic { stage: "fold", msg });
    }

    Ok(AttemptOk {
        shards,
        interner,
        pruned_events,
        dropped_chunks: pre_stats.dropped_chunks + route_stats.dropped_chunks,
        malformed_chunks,
        unresolved,
        alloc_failures,
        deadline_hit,
        lost_workers,
    })
}

/// Supervised sibling of [`fold_pipelined_pruned`]: same stages, plus fault
/// hooks, bounded retry, serial fallback, and a [`RunDegradation`] record of
/// everything the run lost. Returns `Err` only when even the serial
/// fallback cannot complete (a deterministic VM failure).
///
/// With `record` set, each attempt streams its resolved events into a
/// `.ptrace` recording at that path (a retried attempt recreates the file).
/// The serial fallback does not record — the loss is noted in the
/// degradation report instead of failing the run.
pub fn fold_pipelined_supervised(
    prog: &Program,
    structure: &StaticStructure,
    cfg: &PipelineConfig,
    trace: Option<&Arc<Collector>>,
    prune: Option<Arc<PruneMask>>,
    record: Option<&Path>,
    res: &ResilienceConfig,
) -> Result<(FoldedDdg, ContextInterner, u64, RunDegradation), PolyProfError> {
    let mut deg = RunDegradation::default();

    let mut attempt_no: u32 = 0;
    let outcome = loop {
        match fold_attempt(
            prog,
            structure,
            cfg,
            trace,
            prune.clone(),
            res.faults.as_ref(),
            res.budget.as_ref(),
            record,
        ) {
            Ok(ok) => break Some(ok),
            Err(e) if attempt_no < res.max_retries => {
                attempt_no += 1;
                deg.stage_retries += 1;
                deg.note(
                    "supervisor",
                    format!("attempt {attempt_no} failed ({e}); retrying"),
                );
                if let Some(c) = trace {
                    c.add(Counter::StageRetries, 1);
                    c.timeline_instant("stage-retry", TID_DRIVER, attempt_no as u64, 0);
                }
                let _span = trace.map(|c| c.span(Stage::Recovery));
                std::thread::sleep(res.backoff * attempt_no);
            }
            Err(e) => {
                deg.note(
                    "supervisor",
                    format!("pipeline abandoned after {attempt_no} retries ({e}); serial fallback"),
                );
                break None;
            }
        }
    };

    let (ddg, interner, pruned_events) = match outcome {
        Some(ok) => {
            deg.dropped_chunks = ok.dropped_chunks;
            deg.malformed_chunks = ok.malformed_chunks;
            deg.unresolved_accesses = ok.unresolved;
            deg.shadow_alloc_failures = ok.alloc_failures;
            deg.deadline_hit = ok.deadline_hit;
            for (shard, msg) in &ok.lost_workers {
                deg.note(
                    "fold",
                    format!("shard {shard} lost ({msg}); output is partial"),
                );
            }
            deg.budget_overapprox_stmts = ok
                .shards
                .iter()
                .flatten()
                .map(|s| s.fold_stats().budget_degraded)
                .sum();
            let (ddg, missing) = {
                let _span = trace.map(|c| c.pipe_span(PipeStage::Merge));
                finalize_shards_tolerant(ok.shards, prog, &ok.interner)
            };
            deg.missing_shards = missing;
            (ddg, ok.interner, ok.pruned_events)
        }
        None => {
            // Serial fallback: the trusted single-thread path, fault hooks
            // off, budget still honored so degradation semantics survive.
            deg.fell_back_serial = true;
            if let Some(path) = record {
                deg.note(
                    "record",
                    format!("serial fallback skipped recording to {}", path.display()),
                );
            }
            if let Some(c) = trace {
                c.add(Counter::SerialFallbacks, 1);
                c.timeline_instant("serial-fallback", TID_DRIVER, attempt_no as u64, 0);
            }
            let _span = trace.map(|c| c.span(Stage::Recovery));
            let mut sink = FoldingSink::with_options(cfg.options);
            if let Some(b) = &res.budget {
                sink.set_budget(Arc::clone(b));
            }
            let mut prof = DdgProfiler::with_config(prog, structure, sink, cfg.ddg);
            if let Some(m) = prune {
                prof.set_prune_mask(m);
            }
            if let Some(b) = &res.budget {
                prof.set_budget(Arc::clone(b));
            }
            let mut vm = polyvm::Vm::new(prog);
            if let Some(c) = trace {
                if c.timing() {
                    vm.enable_opcode_telemetry(c.tracing());
                }
            }
            match vm.run(&[], &mut prof) {
                Ok(_) => {}
                Err(polyvm::VmError::Aborted) => deg.deadline_hit = true,
                Err(e) => {
                    return Err(PolyProfError::Vm {
                        stage: "pass-2",
                        msg: e.to_string(),
                    })
                }
            }
            if let (Some(c), Some(t)) = (trace, vm.take_opcode_telemetry()) {
                t.harvest(c);
            }
            let pruned_events = prof.pruned_events;
            let (sink, interner) = prof.finish();
            deg.budget_overapprox_stmts = sink.fold_stats().budget_degraded;
            let ddg = sink.finalize(prog, &interner);
            (ddg, interner, pruned_events)
        }
    };

    if let Some(b) = &res.budget {
        deg.budget_pressure = b.under_pressure();
        deg.peak_tracked_bytes = b.peak_bytes();
        if b.deadline_was_hit() {
            deg.deadline_hit = true;
        }
    }
    if let Some(p) = &res.faults {
        let alloc_seen = deg.shadow_alloc_failures;
        deg.absorb_plan(p);
        // `absorb_plan` reports plan-fired allocation faults; keep whichever
        // count is larger in case a retried attempt saw real failures too.
        deg.shadow_alloc_failures = deg.shadow_alloc_failures.max(alloc_seen);
    }
    if let Some(c) = trace {
        c.add(Counter::FaultsInjected, deg.faults_injected);
        c.add(Counter::UnresolvedAccesses, deg.unresolved_accesses);
        c.add(Counter::BudgetOverapprox, deg.budget_overapprox_stmts);
        if deg.deadline_hit {
            c.add(Counter::DeadlineHits, 1);
            c.timeline_instant("deadline-hit", TID_DRIVER, 0, 0);
        }
        if deg.budget_pressure {
            c.timeline_instant("budget-pressure", TID_DRIVER, deg.peak_tracked_bytes, 0);
        }
    }

    Ok((ddg, interner, pruned_events, deg))
}

/// Finalize every present shard in parallel (the vendored rayon stand-in has
/// no owned `into_par_iter`, hence the one-element-chunk option dance), then
/// merge deterministically; absent shards are reported back by index.
fn finalize_shards_tolerant(
    shards: Vec<Option<FoldingSink>>,
    prog: &Program,
    interner: &ContextInterner,
) -> (FoldedDdg, Vec<usize>) {
    use rayon::prelude::*;
    let mut slots = shards;
    let mut parts: Vec<Option<FoldedDdg>> =
        std::iter::repeat_with(|| None).take(slots.len()).collect();
    slots
        .par_chunks_mut(1)
        .zip(parts.par_chunks_mut(1))
        .for_each(|(slot, part)| {
            if let Some(sink) = slot[0].take() {
                part[0] = Some(sink.finalize(prog, interner));
            }
        });
    FoldedDdg::merge_parts_tolerant(parts)
}

/// Pipelined sibling of [`fold_program`](crate::fold_program): pass 1
/// (structure) then the staged pass 2.
pub fn fold_program_pipelined(
    prog: &Program,
    cfg: &PipelineConfig,
) -> (FoldedDdg, ContextInterner, StaticStructure) {
    let mut rec = polycfg::StructureRecorder::new();
    polyvm::Vm::new(prog)
        .run(&[], &mut rec)
        .expect("pass-1 execution failed");
    let structure = StaticStructure::analyze(prog, rec);
    let (ddg, interner) = fold_pipelined(prog, &structure, cfg);
    (ddg, interner, structure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold_program;
    use polyir::build::ProgramBuilder;

    fn stencil_prog() -> Program {
        let mut pb = ProgramBuilder::new("t");
        let base = pb.alloc(64);
        let mut f = pb.func("main", 0);
        f.for_loop("T", 0i64, 3i64, 1, |f, _t| {
            f.for_loop("L", 1i64, 30i64, 1, |f, i| {
                let prev = f.load(base as i64, i);
                let im1 = f.add(i, -1i64);
                let left = f.load(base as i64, im1);
                let v = f.add(prev, left);
                f.store(base as i64, i, v);
            });
        });
        f.ret(None);
        let fid = f.finish();
        pb.set_entry(fid);
        pb.finish()
    }

    fn tiny_cfg(k: usize) -> PipelineConfig {
        PipelineConfig {
            fold_threads: k,
            chunk_events: 16, // tiny chunks: exercise flush boundaries
            ..Default::default()
        }
    }

    fn supervised(
        p: &Program,
        cfg: &PipelineConfig,
        res: &ResilienceConfig,
    ) -> (FoldedDdg, RunDegradation) {
        let mut rec = polycfg::StructureRecorder::new();
        polyvm::Vm::new(p).run(&[], &mut rec).unwrap();
        let structure = StaticStructure::analyze(p, rec);
        let (ddg, _, _, deg) =
            fold_pipelined_supervised(p, &structure, cfg, None, None, None, res).unwrap();
        (ddg, deg)
    }

    /// Smallest possible end-to-end check: shard counts and chunk sizes must
    /// not change any folded fact (the full byte-compare lives in
    /// tests/sharded.rs).
    #[test]
    fn pipelined_matches_serial_counts() {
        let p = stencil_prog();
        let (serial, _, _) = fold_program(&p);
        for k in [1usize, 3] {
            let cfg = tiny_cfg(k);
            let (piped, _, _) = fold_program_pipelined(&p, &cfg);
            assert_eq!(piped.total_ops, serial.total_ops, "k={k}");
            assert_eq!(piped.n_stmts(), serial.n_stmts(), "k={k}");
            assert_eq!(piped.deps.len(), serial.deps.len(), "k={k}");
            assert_eq!(piped.accesses.len(), serial.accesses.len(), "k={k}");
            let aff_s = serial.affine_fraction();
            let aff_p = piped.affine_fraction();
            assert!((aff_s - aff_p).abs() < 1e-12, "k={k}");
        }
    }

    /// A panic inside a stage must reach the caller with its payload.
    #[test]
    fn stage_panic_propagates() {
        let p = stencil_prog();
        let res = std::panic::catch_unwind(|| {
            let cfg = PipelineConfig {
                fold_threads: 1,
                chunk_events: 0, // clamped to 1 — still valid
                ..Default::default()
            };
            // Sanity: a valid run inside catch_unwind works.
            let _ = fold_program_pipelined(&p, &cfg);
            panic!("deliberate: payload must survive");
        });
        let payload = res.expect_err("panic expected");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("deliberate"), "payload lost");
    }

    /// With no faults and no budget, the supervised path must reproduce the
    /// plain pipeline exactly — the hooks are zero-cost `None` branches.
    #[test]
    fn supervised_fault_free_matches_plain() {
        let p = stencil_prog();
        let (serial, _, _) = fold_program(&p);
        let (ddg, deg) = supervised(&p, &tiny_cfg(2), &ResilienceConfig::default());
        assert!(!deg.is_degraded(), "{deg:?}");
        assert_eq!(ddg.total_ops, serial.total_ops);
        assert_eq!(ddg.n_stmts(), serial.n_stmts());
        assert_eq!(ddg.deps.len(), serial.deps.len());
        assert_eq!(ddg.accesses.len(), serial.accesses.len());
    }

    /// A one-shot resolver panic fails the first attempt; the retry probes
    /// past the armed occurrence and completes with full-fidelity output.
    #[test]
    fn one_shot_resolve_panic_retries_to_full_result() {
        let p = stencil_prog();
        let (serial, _, _) = fold_program(&p);
        let res = ResilienceConfig {
            faults: Some(Arc::new(FaultPlan::single(FaultSite::PanicResolve, 1))),
            ..Default::default()
        };
        let (ddg, deg) = supervised(&p, &tiny_cfg(2), &res);
        assert_eq!(deg.stage_retries, 1, "{deg:?}");
        assert!(!deg.fell_back_serial);
        assert!(deg.faults_injected >= 1);
        assert_eq!(ddg.total_ops, serial.total_ops, "retry must be lossless");
        assert_eq!(ddg.deps.len(), serial.deps.len());
    }

    /// A folding-worker panic only loses its shard: the run completes with
    /// the surviving shards and records the hole.
    #[test]
    fn fold_worker_panic_yields_partial_result() {
        let p = stencil_prog();
        let (serial, _, _) = fold_program(&p);
        let res = ResilienceConfig {
            faults: Some(Arc::new(FaultPlan::single(FaultSite::PanicFold, 1))),
            ..Default::default()
        };
        let (ddg, deg) = supervised(&p, &tiny_cfg(3), &res);
        assert_eq!(deg.stage_retries, 0, "worker loss is salvaged, not retried");
        assert_eq!(deg.missing_shards.len(), 1, "{deg:?}");
        assert!(deg.is_degraded());
        assert!(
            ddg.n_stmts() <= serial.n_stmts(),
            "partial result never invents statements"
        );
    }

    /// An every-occurrence panic defeats retry and forces the serial
    /// fallback — which, being fault-free, produces the full exact result.
    #[test]
    fn persistent_panic_falls_back_serial() {
        let p = stencil_prog();
        let (serial, _, _) = fold_program(&p);
        let res = ResilienceConfig {
            faults: Some(Arc::new(FaultPlan::always(FaultSite::PanicResolve))),
            max_retries: 1,
            backoff: Duration::from_millis(1),
            ..Default::default()
        };
        let (ddg, deg) = supervised(&p, &tiny_cfg(2), &res);
        assert!(deg.fell_back_serial, "{deg:?}");
        assert_eq!(deg.stage_retries, 1);
        assert_eq!(ddg.total_ops, serial.total_ops, "fallback is lossless");
        assert_eq!(ddg.deps.len(), serial.deps.len());
        assert_eq!(ddg.n_stmts(), serial.n_stmts());
    }

    /// A dropped chunk completes the run and is accounted for.
    #[test]
    fn dropped_chunk_completes_with_degradation() {
        let p = stencil_prog();
        let res = ResilienceConfig {
            faults: Some(Arc::new(FaultPlan::single(FaultSite::DropSend, 1))),
            ..Default::default()
        };
        let (_, deg) = supervised(&p, &tiny_cfg(2), &res);
        assert!(deg.dropped_chunks >= 1, "{deg:?}");
        assert!(deg.is_degraded());
    }

    /// A corrupted chunk is caught by validation, skipped, and counted —
    /// never replayed into a folder.
    #[test]
    fn malformed_chunk_rejected_and_counted() {
        let p = stencil_prog();
        let res = ResilienceConfig {
            faults: Some(Arc::new(FaultPlan::single(FaultSite::MalformedChunk, 1))),
            ..Default::default()
        };
        let (_, deg) = supervised(&p, &tiny_cfg(2), &res);
        assert_eq!(deg.malformed_chunks, 1, "{deg:?}");
        assert!(deg.is_degraded());
    }

    /// A refused shadow-page allocation skips that access's dependences but
    /// the run completes with the loss accounted.
    #[test]
    fn shadow_alloc_fault_counted_as_unresolved() {
        let p = stencil_prog();
        let res = ResilienceConfig {
            faults: Some(Arc::new(FaultPlan::single(FaultSite::AllocShadow, 1))),
            ..Default::default()
        };
        let (_, deg) = supervised(&p, &tiny_cfg(2), &res);
        assert_eq!(deg.shadow_alloc_failures, 1, "{deg:?}");
        assert!(deg.unresolved_accesses >= 1, "{deg:?}");
    }
}
