//! Reusable [`EventSink`] implementations: counting,
//! recording (for tests), fan-out composition, and filtering.

use crate::EventSink;
use polyir::{BlockRef, FuncId, InstrRef, Value};

/// Counts event classes; cheap enough for full-program runs.
#[derive(Debug, Default, Clone)]
pub struct CountingSink {
    /// Dynamic instructions executed.
    pub instrs: u64,
    /// Local jumps taken.
    pub jumps: u64,
    /// Calls performed.
    pub calls: u64,
    /// Returns performed.
    pub rets: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Dynamic instructions that produced an `F64` value (includes float
    /// loads/moves; use the feedback crate's program-aware classification
    /// for the paper's `%FPops` metric).
    pub fp_ops: u64,
}

impl EventSink for CountingSink {
    fn local_jump(&mut self, _: BlockRef, _: BlockRef) {
        self.jumps += 1;
    }
    fn call(&mut self, _: BlockRef, _: FuncId, _: BlockRef) {
        self.calls += 1;
    }
    fn ret(&mut self, _: FuncId, _: Option<BlockRef>) {
        self.rets += 1;
    }
    fn exec(&mut self, _: InstrRef, value: Option<Value>) {
        self.instrs += 1;
        if matches!(value, Some(Value::F64(_))) {
            self.fp_ops += 1;
        }
    }
    fn mem(&mut self, _: InstrRef, _: u64, is_write: bool) {
        if is_write {
            self.stores += 1;
        } else {
            self.loads += 1;
        }
    }
}

/// A fully materialized trace event (testing / small programs only).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Local jump.
    Jump {
        /// Source block.
        from: BlockRef,
        /// Target block.
        to: BlockRef,
    },
    /// Call.
    Call {
        /// Block containing the call site.
        callsite: BlockRef,
        /// Callee function.
        callee: FuncId,
        /// Callee entry block.
        entry: BlockRef,
    },
    /// Return.
    Ret {
        /// Function returned from.
        from: FuncId,
        /// Caller block resumed in (`None` at program exit).
        to: Option<BlockRef>,
    },
    /// Dynamic instruction.
    Exec {
        /// Static instruction.
        instr: InstrRef,
        /// Produced value.
        value: Option<Value>,
    },
    /// Memory access.
    Mem {
        /// Accessing instruction.
        instr: InstrRef,
        /// Word address.
        addr: u64,
        /// Store?
        is_write: bool,
    },
}

/// Records the complete event stream (use only on small programs).
#[derive(Debug, Default, Clone)]
pub struct RecordingSink {
    /// The recorded stream, in emission order.
    pub events: Vec<TraceEvent>,
}

impl EventSink for RecordingSink {
    fn local_jump(&mut self, from: BlockRef, to: BlockRef) {
        self.events.push(TraceEvent::Jump { from, to });
    }
    fn call(&mut self, callsite: BlockRef, callee: FuncId, entry: BlockRef) {
        self.events.push(TraceEvent::Call {
            callsite,
            callee,
            entry,
        });
    }
    fn ret(&mut self, from: FuncId, to: Option<BlockRef>) {
        self.events.push(TraceEvent::Ret { from, to });
    }
    fn exec(&mut self, instr: InstrRef, value: Option<Value>) {
        self.events.push(TraceEvent::Exec { instr, value });
    }
    fn mem(&mut self, instr: InstrRef, addr: u64, is_write: bool) {
        self.events.push(TraceEvent::Mem {
            instr,
            addr,
            is_write,
        });
    }
}

/// Broadcasts every event to two sinks (compose for more). This is how the
/// paper's "multiple interacting plugins" stack is modelled.
#[derive(Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: EventSink, B: EventSink> EventSink for Tee<A, B> {
    fn local_jump(&mut self, from: BlockRef, to: BlockRef) {
        self.0.local_jump(from, to);
        self.1.local_jump(from, to);
    }
    fn call(&mut self, callsite: BlockRef, callee: FuncId, entry: BlockRef) {
        self.0.call(callsite, callee, entry);
        self.1.call(callsite, callee, entry);
    }
    fn ret(&mut self, from: FuncId, to: Option<BlockRef>) {
        self.0.ret(from, to);
        self.1.ret(from, to);
    }
    fn exec(&mut self, instr: InstrRef, value: Option<Value>) {
        self.0.exec(instr, value);
        self.1.exec(instr, value);
    }
    fn mem(&mut self, instr: InstrRef, addr: u64, is_write: bool) {
        self.0.mem(instr, addr, is_write);
        self.1.mem(instr, addr, is_write);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tee_broadcasts() {
        let mut t = Tee(CountingSink::default(), CountingSink::default());
        t.exec(
            InstrRef {
                block: BlockRef::new(FuncId(0), 0),
                idx: 0,
            },
            Some(Value::F64(1.0)),
        );
        t.mem(
            InstrRef {
                block: BlockRef::new(FuncId(0), 0),
                idx: 0,
            },
            42,
            true,
        );
        assert_eq!(t.0.instrs, 1);
        assert_eq!(t.1.instrs, 1);
        assert_eq!(t.0.fp_ops, 1);
        assert_eq!(t.0.stores, 1);
        assert_eq!(t.1.stores, 1);
    }
}
