//! # polyvm — instrumenting interpreter for the PolyVM ISA
//!
//! Stand-in for the paper's QEMU-plugin dynamic binary instrumentation
//! (§3, "Instrumentation I/II"). The interpreter executes a
//! [`polyir::Program`] and reports, through the [`EventSink`] trait, exactly
//! the observables the paper's plugins report:
//!
//! * **control events** — local jumps, calls (with the call-site block and
//!   the callee entry block) and returns (with the block execution resumes
//!   in), the raw alphabet consumed by Alg. 1/2 of the paper;
//! * **instruction events** — every dynamic instruction with the value it
//!   produced (used for SCEV recognition and folding labels);
//! * **memory events** — every load/store with its word address (used by the
//!   shadow memory to derive data dependences, and by the stride analysis).
//!
//! Profiling is *streaming*: no trace is ever materialized, mirroring the
//! paper's online pipeline. Stages are composed by nesting sinks.

use polyir::*;
use std::collections::HashMap;
use std::time::Instant;

pub mod sinks;

// ---------------------------------------------------------------------------
// Opcode telemetry
// ---------------------------------------------------------------------------

/// Number of distinct opcode slots: `Const`, `Move`, every `IBinOp`,
/// `FBinOp`, integer and float `CmpOp`, every `UnOp`, `Load`, `Store`,
/// `Call`.
pub const N_OPCODES: usize = 45;

/// Stable display names, indexed by [`opcode_slot`].
pub static OPCODE_NAMES: [&str; N_OPCODES] = [
    "const",
    "move",
    "iop.add",
    "iop.sub",
    "iop.mul",
    "iop.div",
    "iop.rem",
    "iop.and",
    "iop.or",
    "iop.xor",
    "iop.shl",
    "iop.shr",
    "iop.min",
    "iop.max",
    "fop.add",
    "fop.sub",
    "fop.mul",
    "fop.div",
    "fop.min",
    "fop.max",
    "icmp.eq",
    "icmp.ne",
    "icmp.lt",
    "icmp.le",
    "icmp.gt",
    "icmp.ge",
    "fcmp.eq",
    "fcmp.ne",
    "fcmp.lt",
    "fcmp.le",
    "fcmp.gt",
    "fcmp.ge",
    "un.sqrt",
    "un.exp",
    "un.log",
    "un.abs",
    "un.neg",
    "un.sigmoid",
    "un.sin",
    "un.cos",
    "un.f2i",
    "un.i2f",
    "load",
    "store",
    "call",
];

/// Dense telemetry slot of an instruction (sub-opcode resolution: every
/// binary/compare/unary operator gets its own slot).
#[inline]
pub fn opcode_slot(ins: &Instr) -> usize {
    match ins {
        Instr::Const { .. } => 0,
        Instr::Move { .. } => 1,
        Instr::IOp { op, .. } => 2 + *op as usize,
        Instr::FOp { op, .. } => 14 + *op as usize,
        Instr::ICmp { op, .. } => 20 + *op as usize,
        Instr::FCmp { op, .. } => 26 + *op as usize,
        Instr::Un { op, .. } => 32 + *op as usize,
        Instr::Load { .. } => 42,
        Instr::Store { .. } => 43,
        Instr::Call { .. } => 44,
    }
}

/// How often the dispatch-time histogram samples when enabled: one timed
/// dispatch per 64 dynamic instructions bounds the clock-read overhead to a
/// fraction of a nanosecond per instruction.
const DISPATCH_SAMPLE_MASK: u64 = 0x3F;

/// Per-opcode dispatch telemetry of one VM run — the input signal for
/// future dispatch-reordering / superinstruction (PGO) work.
///
/// Same hot-path discipline as `polyfold::FoldStats`: plain `u64` fields on
/// the single owning thread, no atomics, harvested once when the run
/// finishes ([`OpcodeTelemetry::harvest`]). Disabled (`Vm` default) the
/// interpreter pays exactly one branch per dynamic instruction.
#[derive(Debug, Clone)]
pub struct OpcodeTelemetry {
    /// Dispatch counts, indexed by [`opcode_slot`].
    pub counts: [u64; N_OPCODES],
    /// Sampled single-dispatch wall times (ns); empty unless timing was
    /// requested at [`Vm::enable_opcode_telemetry`].
    pub dispatch_ns: polytrace::Histogram,
    /// Total dynamic instructions observed.
    pub total: u64,
    time_dispatch: bool,
}

impl OpcodeTelemetry {
    fn new(time_dispatch: bool) -> Self {
        OpcodeTelemetry {
            counts: [0; N_OPCODES],
            dispatch_ns: polytrace::Histogram::new(),
            total: 0,
            time_dispatch,
        }
    }

    /// Count one dispatch; returns whether this dispatch should be timed.
    #[inline]
    fn observe(&mut self, ins: &Instr) -> bool {
        self.counts[opcode_slot(ins)] += 1;
        self.total += 1;
        self.time_dispatch && self.total & DISPATCH_SAMPLE_MASK == 0
    }

    /// Fold the telemetry into a collector: per-opcode counts become
    /// `vm_ops` entries, the sampled dispatch times merge into the
    /// [`polytrace::HistKind::VmDispatchNs`] histogram.
    pub fn harvest(&self, col: &polytrace::Collector) {
        for (slot, &count) in self.counts.iter().enumerate() {
            col.record_vm_op(OPCODE_NAMES[slot], count);
        }
        col.merge_hist(polytrace::HistKind::VmDispatchNs, &self.dispatch_ns);
    }
}

/// Receives the instrumentation event stream during execution.
///
/// All methods default to no-ops so sinks only implement what they need.
/// Method order within one dynamic instruction: `mem` (for loads: before the
/// value is produced; for stores: after operands are read) then `exec`.
pub trait EventSink {
    /// A local (intra-procedural) control transfer `from → to` caused by a
    /// `Jump` or `Br` terminator.
    fn local_jump(&mut self, from: BlockRef, to: BlockRef) {
        let _ = (from, to);
    }
    /// A call: `callsite` is the block containing the `Call` instruction,
    /// `entry` the callee's entry block.
    fn call(&mut self, callsite: BlockRef, callee: FuncId, entry: BlockRef) {
        let _ = (callsite, callee, entry);
    }
    /// A return from `from`; `to` is the caller block where execution
    /// resumes (`None` when the program's entry function returns).
    fn ret(&mut self, from: FuncId, to: Option<BlockRef>) {
        let _ = (from, to);
    }
    /// A dynamic instruction; `value` is what it wrote to its destination
    /// register, if any. Emitted after the instruction's effects.
    fn exec(&mut self, instr: InstrRef, value: Option<Value>) {
        let _ = (instr, value);
    }
    /// A memory access performed by `instr` at word address `addr`.
    fn mem(&mut self, instr: InstrRef, addr: u64, is_write: bool) {
        let _ = (instr, addr, is_write);
    }
    /// Watchdog hook: polled by the interpreter (throttled, every few
    /// thousand dynamic instructions). Returning `true` aborts the run with
    /// [`VmError::Aborted`]; everything the sink observed so far remains
    /// valid, so profilers can finalize a partial result. The default never
    /// aborts.
    fn poll_abort(&mut self) -> bool {
        false
    }
}

/// A sink that ignores everything (un-instrumented execution).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;
impl EventSink for NullSink {}

/// Why execution stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The dynamic instruction budget ran out.
    FuelExhausted,
    /// An `Unreachable` terminator executed (block name attached).
    Unreachable(String),
    /// Call stack exceeded the configured limit.
    StackOverflow,
    /// The program has no entry function.
    NoEntry,
    /// The sink's [`EventSink::poll_abort`] watchdog requested an abort.
    /// Events delivered before the abort are complete and consistent.
    Aborted,
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::FuelExhausted => write!(f, "dynamic instruction budget exhausted"),
            VmError::Unreachable(b) => write!(f, "reached unreachable terminator in {b}"),
            VmError::StackOverflow => write!(f, "call stack overflow"),
            VmError::NoEntry => write!(f, "program has no entry function"),
            VmError::Aborted => write!(f, "run aborted by sink watchdog"),
        }
    }
}

impl std::error::Error for VmError {}

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Sentinel page number that can never equal `addr >> PAGE_BITS`.
const NO_PAGE: u64 = u64::MAX;

/// Sparse, paged word-addressed memory. Uninitialized cells read as `I64(0)`.
///
/// Pages live in a flat vector behind a page-number index; an MRU (last-page)
/// cache serves the same-page access streams of dense kernels without
/// hashing. The MRU is interior-mutable so reads stay `&self`; this makes
/// `Memory` non-`Sync`, which is fine — each interpreter thread owns its VM.
#[derive(Debug)]
pub struct Memory {
    pages: Vec<Box<[Value; PAGE_SIZE]>>,
    index: HashMap<u64, u32>,
    mru: std::cell::Cell<(u64, u32)>,
}

impl Default for Memory {
    fn default() -> Self {
        Memory {
            pages: Vec::new(),
            index: HashMap::new(),
            mru: std::cell::Cell::new((NO_PAGE, 0)),
        }
    }
}

impl Memory {
    /// Fresh empty memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Read the cell at `addr`.
    #[inline]
    pub fn read(&self, addr: u64) -> Value {
        let page_num = addr >> PAGE_BITS;
        let slot = if self.mru.get().0 == page_num {
            self.mru.get().1
        } else {
            match self.index.get(&page_num) {
                Some(&s) => {
                    self.mru.set((page_num, s));
                    s
                }
                None => return Value::I64(0),
            }
        };
        self.pages[slot as usize][(addr as usize) & (PAGE_SIZE - 1)]
    }

    /// Write the cell at `addr`.
    #[inline]
    pub fn write(&mut self, addr: u64, v: Value) {
        let page_num = addr >> PAGE_BITS;
        let slot = if self.mru.get().0 == page_num {
            self.mru.get().1
        } else {
            let slot = match self.index.entry(page_num) {
                std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let slot = self.pages.len() as u32;
                    self.pages.push(Box::new([Value::I64(0); PAGE_SIZE]));
                    e.insert(slot);
                    slot
                }
            };
            self.mru.set((page_num, slot));
            slot
        };
        self.pages[slot as usize][(addr as usize) & (PAGE_SIZE - 1)] = v;
    }

    /// Number of resident pages (for overhead statistics).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

struct Frame {
    func: FuncId,
    block: LocalBlockId,
    idx: usize,
    regs: Vec<Value>,
    /// Where to put the return value in the caller.
    ret_reg: Option<Reg>,
}

/// Result of a completed execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Return value of the entry function.
    pub ret: Option<Value>,
    /// Number of dynamic (non-terminator) instructions executed.
    pub dyn_instrs: u64,
}

/// Interpreter configuration.
#[derive(Debug, Clone, Copy)]
pub struct VmConfig {
    /// Maximum dynamic instructions before `FuelExhausted` (default 2^40).
    pub fuel: u64,
    /// Maximum call-stack depth (default 1 << 16).
    pub max_stack: usize,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            fuel: 1 << 40,
            max_stack: 1 << 16,
        }
    }
}

/// The PolyVM interpreter.
pub struct Vm<'p> {
    prog: &'p Program,
    /// Program memory, exposed so harnesses can pre-load inputs and inspect
    /// outputs around [`Vm::run`].
    pub mem: Memory,
    cfg: VmConfig,
    /// Boxed so the disabled (default) case costs the interpreter one
    /// pointer check per dynamic instruction and nothing else.
    telemetry: Option<Box<OpcodeTelemetry>>,
}

impl<'p> Vm<'p> {
    /// Create a VM over `prog` with the default configuration; the program's
    /// data segment is loaded into memory.
    pub fn new(prog: &'p Program) -> Self {
        Self::with_config(prog, VmConfig::default())
    }

    /// Create a VM with an explicit configuration.
    pub fn with_config(prog: &'p Program, cfg: VmConfig) -> Self {
        let mut mem = Memory::new();
        for &(addr, v) in &prog.data {
            mem.write(addr, v);
        }
        Vm {
            prog,
            mem,
            cfg,
            telemetry: None,
        }
    }

    /// Turn on per-opcode dispatch counting for subsequent runs.
    /// `time_dispatch` additionally samples single-dispatch wall times (one
    /// in 64) into [`OpcodeTelemetry::dispatch_ns`].
    pub fn enable_opcode_telemetry(&mut self, time_dispatch: bool) {
        self.telemetry = Some(Box::new(OpcodeTelemetry::new(time_dispatch)));
    }

    /// Detach the accumulated telemetry (if enabled); counting stops.
    pub fn take_opcode_telemetry(&mut self) -> Option<Box<OpcodeTelemetry>> {
        self.telemetry.take()
    }

    #[inline]
    fn eval(regs: &[Value], o: &Operand) -> Value {
        match o {
            Operand::Reg(r) => regs[r.0 as usize],
            Operand::ImmI(v) => Value::I64(*v),
            Operand::ImmF(v) => Value::F64(*v),
        }
    }

    /// Execute the entry function with `args`, streaming events to `sink`.
    pub fn run<S: EventSink>(
        &mut self,
        args: &[Value],
        sink: &mut S,
    ) -> Result<RunOutcome, VmError> {
        let entry = self.prog.entry.ok_or(VmError::NoEntry)?;
        self.run_func(entry, args, sink)
    }

    /// Execute an arbitrary function as the root frame.
    pub fn run_func<S: EventSink>(
        &mut self,
        root: FuncId,
        args: &[Value],
        sink: &mut S,
    ) -> Result<RunOutcome, VmError> {
        let rootf = self.prog.func(root);
        assert_eq!(args.len(), rootf.n_params as usize, "root arity mismatch");
        let mut regs = vec![Value::I64(0); rootf.n_regs as usize];
        regs[..args.len()].copy_from_slice(args);
        let mut stack = vec![Frame {
            func: root,
            block: rootf.entry(),
            idx: 0,
            regs,
            ret_reg: None,
        }];
        let mut fuel = self.cfg.fuel;
        let mut executed: u64 = 0;

        'outer: loop {
            // Execute instructions of the current frame until a control event.
            let (func, block, idx) = {
                let f = stack.last().expect("non-empty stack");
                (f.func, f.block, f.idx)
            };
            let blk = self.prog.func(func).block(block);
            let here = BlockRef { func, block };

            if idx < blk.instrs.len() {
                let ins = &blk.instrs[idx];
                if fuel == 0 {
                    return Err(VmError::FuelExhausted);
                }
                fuel -= 1;
                executed += 1;
                // Throttled watchdog poll: one virtual call per 4096 dynamic
                // instructions keeps the hook invisible in steady state.
                if executed & 0xFFF == 0 && sink.poll_abort() {
                    return Err(VmError::Aborted);
                }
                // Opcode telemetry: a single pointer check when disabled;
                // an indexed increment (plus, for one dispatch in 64 when
                // dispatch timing is on, a clock read pair) when enabled.
                let time_this = match self.telemetry.as_deref_mut() {
                    Some(t) => t.observe(ins),
                    None => false,
                };
                let iref = InstrRef {
                    block: here,
                    idx: idx as u32,
                };
                match ins {
                    Instr::Call {
                        dst,
                        func: callee,
                        args,
                    } => {
                        if stack.len() >= self.cfg.max_stack {
                            return Err(VmError::StackOverflow);
                        }
                        let frame = stack.last_mut().expect("frame");
                        let vals: Vec<Value> =
                            args.iter().map(|a| Self::eval(&frame.regs, a)).collect();
                        frame.idx = idx + 1;
                        let calleef = self.prog.func(*callee);
                        let mut regs = vec![Value::I64(0); calleef.n_regs as usize];
                        regs[..vals.len()].copy_from_slice(&vals);
                        let entry = BlockRef {
                            func: *callee,
                            block: calleef.entry(),
                        };
                        sink.exec(iref, None);
                        sink.call(here, *callee, entry);
                        stack.push(Frame {
                            func: *callee,
                            block: calleef.entry(),
                            idx: 0,
                            regs,
                            ret_reg: *dst,
                        });
                        continue 'outer;
                    }
                    _ => {
                        let frame = stack.last_mut().expect("frame");
                        let t0 = time_this.then(Instant::now);
                        let value = step_instr(ins, frame, &mut self.mem, iref, sink);
                        if let (Some(t0), Some(t)) = (t0, self.telemetry.as_deref_mut()) {
                            t.dispatch_ns.record(t0.elapsed().as_nanos() as u64);
                        }
                        frame.idx = idx + 1;
                        sink.exec(iref, value);
                        continue 'outer;
                    }
                }
            }

            // Terminator.
            match &blk.term {
                Terminator::Jump(t) => {
                    let to = BlockRef { func, block: *t };
                    sink.local_jump(here, to);
                    let frame = stack.last_mut().expect("frame");
                    frame.block = *t;
                    frame.idx = 0;
                }
                Terminator::Br { cond, then_, else_ } => {
                    let frame = stack.last_mut().expect("frame");
                    let c = Self::eval(&frame.regs, cond).is_truthy();
                    let t = if c { *then_ } else { *else_ };
                    let to = BlockRef { func, block: t };
                    frame.block = t;
                    frame.idx = 0;
                    sink.local_jump(here, to);
                }
                Terminator::Ret(v) => {
                    let frame = stack.last().expect("frame");
                    let rv = v.as_ref().map(|o| Self::eval(&frame.regs, o));
                    let ret_reg = frame.ret_reg;
                    stack.pop();
                    match stack.last_mut() {
                        Some(caller) => {
                            if let (Some(r), Some(val)) = (ret_reg, rv) {
                                caller.regs[r.0 as usize] = val;
                            }
                            let to = BlockRef {
                                func: caller.func,
                                block: caller.block,
                            };
                            sink.ret(func, Some(to));
                        }
                        None => {
                            sink.ret(func, None);
                            return Ok(RunOutcome {
                                ret: rv,
                                dyn_instrs: executed,
                            });
                        }
                    }
                }
                Terminator::Unreachable => {
                    return Err(VmError::Unreachable(blk.name.clone()));
                }
            }
        }
    }
}

/// Execute one non-call instruction; returns the produced value.
fn step_instr<S: EventSink>(
    ins: &Instr,
    frame: &mut Frame,
    mem: &mut Memory,
    iref: InstrRef,
    sink: &mut S,
) -> Option<Value> {
    let ev = |regs: &[Value], o: &Operand| -> Value {
        match o {
            Operand::Reg(r) => regs[r.0 as usize],
            Operand::ImmI(v) => Value::I64(*v),
            Operand::ImmF(v) => Value::F64(*v),
        }
    };
    match ins {
        Instr::Const { dst, value } => {
            frame.regs[dst.0 as usize] = *value;
            Some(*value)
        }
        Instr::Move { dst, src } => {
            let v = ev(&frame.regs, src);
            frame.regs[dst.0 as usize] = v;
            Some(v)
        }
        Instr::IOp { dst, op, a, b } => {
            let x = ev(&frame.regs, a).as_i64();
            let y = ev(&frame.regs, b).as_i64();
            let v = Value::I64(ibinop(*op, x, y));
            frame.regs[dst.0 as usize] = v;
            Some(v)
        }
        Instr::FOp { dst, op, a, b } => {
            let x = ev(&frame.regs, a).as_f64();
            let y = ev(&frame.regs, b).as_f64();
            let v = Value::F64(fbinop(*op, x, y));
            frame.regs[dst.0 as usize] = v;
            Some(v)
        }
        Instr::ICmp { dst, op, a, b } => {
            let x = ev(&frame.regs, a).as_i64();
            let y = ev(&frame.regs, b).as_i64();
            let v = Value::I64(cmp(*op, &x, &y) as i64);
            frame.regs[dst.0 as usize] = v;
            Some(v)
        }
        Instr::FCmp { dst, op, a, b } => {
            let x = ev(&frame.regs, a).as_f64();
            let y = ev(&frame.regs, b).as_f64();
            let v = Value::I64(cmp(*op, &x, &y) as i64);
            frame.regs[dst.0 as usize] = v;
            Some(v)
        }
        Instr::Un { dst, op, a } => {
            let x = ev(&frame.regs, a);
            let v = unop(*op, x);
            frame.regs[dst.0 as usize] = v;
            Some(v)
        }
        Instr::Load { dst, base, offset } => {
            let addr = (ev(&frame.regs, base)
                .as_i64()
                .wrapping_add(ev(&frame.regs, offset).as_i64())) as u64;
            sink.mem(iref, addr, false);
            let v = mem.read(addr);
            frame.regs[dst.0 as usize] = v;
            Some(v)
        }
        Instr::Store { base, offset, src } => {
            let addr = (ev(&frame.regs, base)
                .as_i64()
                .wrapping_add(ev(&frame.regs, offset).as_i64())) as u64;
            let v = ev(&frame.regs, src);
            sink.mem(iref, addr, true);
            mem.write(addr, v);
            None
        }
        Instr::Call { .. } => unreachable!("calls handled by the main loop"),
    }
}

fn ibinop(op: IBinOp, a: i64, b: i64) -> i64 {
    match op {
        IBinOp::Add => a.wrapping_add(b),
        IBinOp::Sub => a.wrapping_sub(b),
        IBinOp::Mul => a.wrapping_mul(b),
        IBinOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        IBinOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        IBinOp::And => a & b,
        IBinOp::Or => a | b,
        IBinOp::Xor => a ^ b,
        IBinOp::Shl => a.wrapping_shl(b as u32 & 63),
        IBinOp::Shr => a.wrapping_shr(b as u32 & 63),
        IBinOp::Min => a.min(b),
        IBinOp::Max => a.max(b),
    }
}

fn fbinop(op: FBinOp, a: f64, b: f64) -> f64 {
    match op {
        FBinOp::Add => a + b,
        FBinOp::Sub => a - b,
        FBinOp::Mul => a * b,
        FBinOp::Div => a / b,
        FBinOp::Min => a.min(b),
        FBinOp::Max => a.max(b),
    }
}

fn cmp<T: PartialOrd>(op: CmpOp, a: &T, b: &T) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

fn unop(op: UnOp, a: Value) -> Value {
    match op {
        UnOp::Sqrt => Value::F64(a.as_f64().sqrt()),
        UnOp::Exp => Value::F64(a.as_f64().exp()),
        UnOp::Log => {
            let x = a.as_f64().abs();
            Value::F64(if x == 0.0 { 0.0 } else { x.ln() })
        }
        UnOp::Abs => match a {
            Value::I64(v) => Value::I64(v.wrapping_abs()),
            Value::F64(v) => Value::F64(v.abs()),
        },
        UnOp::Neg => match a {
            Value::I64(v) => Value::I64(v.wrapping_neg()),
            Value::F64(v) => Value::F64(-v),
        },
        UnOp::Sigmoid => Value::F64(1.0 / (1.0 + (-a.as_f64()).exp())),
        UnOp::Sin => Value::F64(a.as_f64().sin()),
        UnOp::Cos => Value::F64(a.as_f64().cos()),
        UnOp::F2I => Value::I64(a.as_f64() as i64),
        UnOp::I2F => Value::F64(a.as_i64() as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyir::build::ProgramBuilder;
    use sinks::{CountingSink, RecordingSink, TraceEvent};

    fn sum_to_10() -> Program {
        let mut pb = ProgramBuilder::new("sum");
        let mut f = pb.func("main", 0);
        let acc = f.const_i(0);
        f.for_loop("L", 0i64, 10i64, 1, |f, i| {
            f.iop_to(acc, IBinOp::Add, acc, i);
        });
        f.ret(Some(acc.into()));
        let fid = f.finish();
        pb.set_entry(fid);
        pb.finish()
    }

    #[test]
    fn runs_simple_loop() {
        let p = sum_to_10();
        let mut vm = Vm::new(&p);
        let out = vm.run(&[], &mut NullSink).unwrap();
        assert_eq!(out.ret, Some(Value::I64(45)));
    }

    #[test]
    fn counts_dynamic_instructions() {
        let p = sum_to_10();
        let mut vm = Vm::new(&p);
        let mut c = CountingSink::default();
        let out = vm.run(&[], &mut c).unwrap();
        assert_eq!(c.instrs, out.dyn_instrs);
        // const + mov + 11 cmps + 10 adds(acc) + 10 adds(iv)
        assert_eq!(out.dyn_instrs, 2 + 11 + 20);
        // 10 iterations => header->body 10x, body->latch 10x, latch->header 10x,
        // header->exit 1x, entry->header 1x
        assert_eq!(c.jumps, 32);
    }

    #[test]
    fn calls_and_returns() {
        let mut pb = ProgramBuilder::new("call");
        let mut sq = pb.func("square", 1);
        let x = sq.param(0);
        let y = sq.mul(x, x);
        sq.ret(Some(y.into()));
        let sq_id = sq.finish();
        let mut f = pb.func("main", 0);
        let a = f.const_i(7);
        let r = f.call(sq_id, &[a.into()]);
        f.ret(Some(r.into()));
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let mut vm = Vm::new(&p);
        let mut rec = RecordingSink::default();
        let out = vm.run(&[], &mut rec).unwrap();
        assert_eq!(out.ret, Some(Value::I64(49)));
        let calls = rec
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Call { .. }))
            .count();
        let rets = rec
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Ret { .. }))
            .count();
        assert_eq!(calls, 1);
        assert_eq!(rets, 2); // callee return + entry return
    }

    #[test]
    fn memory_roundtrip_and_events() {
        let mut pb = ProgramBuilder::new("mem");
        let base = pb.array_f64(&[1.5, 2.5]);
        let mut f = pb.func("main", 0);
        let v0 = f.load(base as i64, 0i64);
        let v1 = f.load(base as i64, 1i64);
        let s = f.fadd(v0, v1);
        f.store(base as i64, 0i64, s);
        let back = f.load(base as i64, 0i64);
        f.ret(Some(back.into()));
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let mut vm = Vm::new(&p);
        let mut c = CountingSink::default();
        let out = vm.run(&[], &mut c).unwrap();
        assert_eq!(out.ret, Some(Value::F64(4.0)));
        assert_eq!(c.loads, 3);
        assert_eq!(c.stores, 1);
        // fadd + the three float loads all produce F64 values
        assert_eq!(c.fp_ops, 4);
    }

    #[test]
    fn fuel_exhaustion() {
        let mut pb = ProgramBuilder::new("spin");
        let mut f = pb.func("main", 0);
        let b = f.block("loop");
        f.jump(b);
        f.switch_to(b);
        f.const_i(1);
        f.jump(b);
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let mut vm = Vm::with_config(
            &p,
            VmConfig {
                fuel: 1000,
                max_stack: 64,
            },
        );
        assert_eq!(vm.run(&[], &mut NullSink), Err(VmError::FuelExhausted));
    }

    #[test]
    fn stack_overflow_detected() {
        let mut pb = ProgramBuilder::new("deep");
        let rec = pb.declare("r", 1);
        let mut f = pb.func("r", 1);
        let n = f.param(0);
        let n1 = f.add(n, 1i64);
        let v = f.call(rec, &[n1.into()]);
        f.ret(Some(v.into()));
        f.finish();
        let mut m = pb.func("main", 0);
        let z = m.const_i(0);
        let r = m.call(rec, &[z.into()]);
        m.ret(Some(r.into()));
        let mid = m.finish();
        pb.set_entry(mid);
        let p = pb.finish();
        let mut vm = Vm::with_config(
            &p,
            VmConfig {
                fuel: 1 << 30,
                max_stack: 100,
            },
        );
        assert_eq!(vm.run(&[], &mut NullSink), Err(VmError::StackOverflow));
    }

    #[test]
    fn recursion_computes_fib() {
        let mut pb = ProgramBuilder::new("fib");
        let fib = pb.declare("fib", 1);
        let mut f = pb.func("fib", 1);
        let n = f.param(0);
        let c = f.icmp(CmpOp::Lt, n, 2i64);
        let bb = f.block("base");
        let rb = f.block("rec");
        f.br(c, bb, rb);
        f.switch_to(bb);
        f.ret(Some(n.into()));
        f.switch_to(rb);
        let n1 = f.sub(n, 1i64);
        let n2 = f.sub(n, 2i64);
        let a = f.call(fib, &[n1.into()]);
        let b = f.call(fib, &[n2.into()]);
        let s = f.add(a, b);
        f.ret(Some(s.into()));
        f.finish();
        let mut m = pb.func("main", 0);
        let ten = m.const_i(10);
        let r = m.call(fib, &[ten.into()]);
        m.ret(Some(r.into()));
        let mid = m.finish();
        pb.set_entry(mid);
        let p = pb.finish();
        let mut vm = Vm::new(&p);
        let out = vm.run(&[], &mut NullSink).unwrap();
        assert_eq!(out.ret, Some(Value::I64(55)));
    }

    #[test]
    fn division_by_zero_is_total() {
        let mut pb = ProgramBuilder::new("div0");
        let mut f = pb.func("main", 0);
        let a = f.div(5i64, 0i64);
        let b = f.rem(5i64, 0i64);
        let s = f.add(a, b);
        f.ret(Some(s.into()));
        let fid = f.finish();
        pb.set_entry(fid);
        let p = pb.finish();
        let mut vm = Vm::new(&p);
        assert_eq!(vm.run(&[], &mut NullSink).unwrap().ret, Some(Value::I64(0)));
    }

    #[test]
    fn opcode_telemetry_counts_every_dispatch() {
        let p = sum_to_10();
        let mut vm = Vm::new(&p);
        vm.enable_opcode_telemetry(true);
        let out = vm.run(&[], &mut NullSink).unwrap();
        let t = vm.take_opcode_telemetry().expect("enabled");
        assert_eq!(t.total, out.dyn_instrs, "every dispatch counted");
        assert_eq!(t.counts.iter().sum::<u64>(), out.dyn_instrs);
        // sum_to_10: 1 const, 1 move, 11 icmp.lt, 20 iop.add
        assert_eq!(
            t.counts[opcode_slot(&Instr::Const {
                dst: Reg(0),
                value: Value::I64(0)
            })],
            1
        );
        let add_slot = 2 + IBinOp::Add as usize;
        assert_eq!(t.counts[add_slot], 20);
        assert_eq!(OPCODE_NAMES[add_slot], "iop.add");
        // Telemetry must not perturb results.
        let mut plain = Vm::new(&p);
        assert_eq!(plain.run(&[], &mut NullSink).unwrap().ret, out.ret);
        // Harvest lands in a collector's vm_ops + dispatch histogram.
        let col = polytrace::Collector::new(polytrace::MetricsLevel::Timing);
        t.harvest(&col);
        let m = col.snapshot(1);
        assert!(m.vm_ops.iter().any(|&(n, c)| n == "iop.add" && c == 20));
        assert_eq!(m.vm_ops.iter().map(|(_, c)| c).sum::<u64>(), out.dyn_instrs);
    }

    #[test]
    fn opcode_slots_are_dense_and_named() {
        // Spot-check slot layout boundaries against the name table.
        assert_eq!(
            opcode_slot(&Instr::Load {
                dst: Reg(0),
                base: Operand::ImmI(0),
                offset: Operand::ImmI(0)
            }),
            42
        );
        assert_eq!(OPCODE_NAMES[42], "load");
        assert_eq!(2 + IBinOp::Max as usize, 13);
        assert_eq!(OPCODE_NAMES[13], "iop.max");
        assert_eq!(14 + FBinOp::Max as usize, 19);
        assert_eq!(OPCODE_NAMES[19], "fop.max");
        assert_eq!(32 + UnOp::I2F as usize, 41);
        assert_eq!(OPCODE_NAMES[41], "un.i2f");
        assert_eq!(N_OPCODES, 45);
    }

    #[test]
    fn deterministic_across_runs() {
        let p = sum_to_10();
        let mut r1 = RecordingSink::default();
        let mut r2 = RecordingSink::default();
        Vm::new(&p).run(&[], &mut r1).unwrap();
        Vm::new(&p).run(&[], &mut r2).unwrap();
        assert_eq!(r1.events, r2.events);
    }
}
