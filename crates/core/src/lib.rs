//! # polyprof-core — the Poly-Prof pipeline, end to end
//!
//! The top-level API of the reproduction of *"Data-Flow/Dependence
//! Profiling for Structured Transformations"* (PPoPP 2019). One call —
//! [`profile`] — runs the whole Fig. 1 pipeline on a PolyVM program:
//!
//! 1. **Instrumentation I** (`polycfg`): dynamic CFG/CG recording, loop
//!    forests, recursive components;
//! 2. **Instrumentation II** (`polyiiv` + `polyddg`): dynamic
//!    interprocedural iteration vectors, shadow memory, dependence streams;
//! 3. **Folding** (`polyfold`): polyhedral compaction, SCEV removal,
//!    over-approximation;
//! 4. **Feedback** (`polysched` + `polyfeedback`): Pluto-style analysis and
//!    PolyFeat-style metrics, flame graphs, annotated ASTs.
//!
//! The static "Polly" baseline (`polystatic`) runs alongside for the
//! paper's Experiment II comparison.
//!
//! ```
//! use polyprof_core::profile;
//!
//! let workload = rodinia::backprop::build();
//! let report = profile(&workload.program);
//! assert!(report.feedback.regions[0].pct_parallel > 0.9);
//! println!("{}", report.annotated_ast);
//! ```

pub use polycfg;
pub use polyddg;
pub use polyfeedback;
pub use polyfold;
pub use polyiiv;
pub use polyir;
pub use polylib;
pub use polysched;
pub use polystatic;
pub use polyvm;

use polyfeedback::metrics::ProgramFeedback;
use polyir::Program;
use polystatic::StaticReport;

/// Everything Poly-Prof produces for one program.
pub struct Report {
    /// PolyFeat-style metrics and suggestions (Tables 3–5 material).
    pub feedback: ProgramFeedback,
    /// The static "Polly" baseline verdicts (Experiment II).
    pub static_report: StaticReport,
    /// Annotated flame graph (SVG, Figs. 5b/7).
    pub flamegraph_svg: String,
    /// Simplified annotated AST of the nest forest (§6 "final output").
    pub annotated_ast: String,
    /// The complete textual feedback document (§6's "extensive" output:
    /// region statistics, dependence summary, transformation sequences,
    /// annotated AST).
    pub full_text: String,
    /// Folded-DDG statistics: (statements after folding+SCEV removal,
    /// dependences, dynamic ops) — the paper's scalability argument
    /// ("thousands of statements → a few hundred").
    pub folded_stats: (usize, usize, u64),
    /// Number of statements removed as SCEVs and dependences removed with
    /// them.
    pub scev_removed: (usize, usize),
}

/// Threading knobs of one profiling run (see `polyfold::pipeline` for the
/// stage anatomy).
#[derive(Debug, Clone, Copy)]
pub struct ProfileConfig {
    /// Folding worker threads. `1` (the default) keeps the fully serial
    /// single-thread path — retained verbatim and bit-compared against the
    /// pipeline by the sharded differential suite. Any larger value runs
    /// pass 2 as a staged pipeline with this many folding shards (plus the
    /// event-generation and shadow-resolution threads).
    pub fold_threads: usize,
    /// Events per pipeline chunk (batching granularity; ignored on the
    /// serial path).
    pub chunk_events: usize,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            fold_threads: 1,
            chunk_events: 4096,
        }
    }
}

/// Run the full Poly-Prof pipeline (both instrumentation passes, folding,
/// scheduling, feedback) plus the static baseline.
pub fn profile(prog: &Program) -> Report {
    profile_with(prog, &ProfileConfig::default())
}

/// As [`profile`], with explicit threading configuration. The sharded
/// pipeline produces byte-identical reports to the serial path; the knobs
/// only trade wall-clock for threads.
pub fn profile_with(prog: &Program, cfg: &ProfileConfig) -> Report {
    // Pass 1: dynamic control structure.
    let mut rec = polycfg::StructureRecorder::new();
    polyvm::Vm::new(prog)
        .run(&[], &mut rec)
        .expect("pass-1 execution failed");
    let structure = polycfg::StaticStructure::analyze(prog, rec);

    // Pass 2: DDG streaming into the folding sink — serial in-line, or the
    // staged pipeline when more than one folding thread is requested.
    let (mut ddg, interner) = if cfg.fold_threads <= 1 {
        let mut prof = polyddg::DdgProfiler::new(prog, &structure, polyfold::FoldingSink::new());
        polyvm::Vm::new(prog)
            .run(&[], &mut prof)
            .expect("pass-2 execution failed");
        let (sink, interner) = prof.finish();
        (sink.finalize(prog, &interner), interner)
    } else {
        let pcfg = polyfold::pipeline::PipelineConfig {
            fold_threads: cfg.fold_threads,
            chunk_events: cfg.chunk_events,
            ..Default::default()
        };
        polyfold::pipeline::fold_pipelined(prog, &structure, &pcfg)
    };
    let scev_removed = ddg.remove_scevs();

    // Stage 4: scheduling + feedback.
    let analysis = polysched::Analysis::analyze(&ddg, &interner);
    let input = polyfeedback::FeedbackInput {
        prog,
        ddg: &ddg,
        interner: &interner,
        structure: &structure,
        analysis: &analysis,
    };
    let feedback = polyfeedback::metrics::compute(&input);
    let flamegraph_svg = polyfeedback::flamegraph_svg(&input, &prog.name);
    let annotated_ast = polyfeedback::annotated_ast(&input);
    let full_text = polyfeedback::full_report(&input, &feedback);

    Report {
        feedback,
        static_report: polystatic::analyze_program(prog),
        flamegraph_svg,
        annotated_ast,
        full_text,
        folded_stats: (ddg.n_stmts(), ddg.deps.len(), ddg.total_ops),
        scev_removed,
    }
}

/// Run [`profile`] over a whole suite, fanning the workloads across threads.
///
/// Every profiling run owns its VM, shadow memory, and folding state, so
/// workloads are embarrassingly parallel; results come back in input order,
/// identical to a serial `progs.iter().map(profile)` loop. This is the
/// driver behind the Table 5 / ablation suite runs.
pub fn profile_all<P: std::borrow::Borrow<Program> + Sync>(progs: &[P]) -> Vec<Report> {
    profile_all_with(progs, |p| profile(p.borrow()))
}

/// Generalized suite driver: apply `f` to each item in parallel, preserving
/// input order. Use this when the per-workload step needs more than
/// [`profile`] (extra configs, paired metadata, custom sinks).
///
/// A panicking workload re-panics on the caller with a payload that names
/// the originating item (`workload #i panicked: <original message>`), so a
/// red CI run points at the failing workload instead of a bare join error.
pub fn profile_all_with<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use rayon::prelude::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    items
        .par_iter()
        .enumerate()
        .map(
            |(i, item)| match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(r) => r,
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&'static str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    std::panic::panic_any(format!("workload #{i} panicked: {msg}"))
                }
            },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_backprop_end_to_end() {
        let w = rodinia::backprop::build();
        let r = profile(&w.program);
        assert!(!r.feedback.regions.is_empty());
        assert!(r.flamegraph_svg.contains("<svg"));
        assert!(r.annotated_ast.contains("for"));
        // folding compacts: way fewer statements than dynamic ops
        let (stmts, _deps, ops) = r.folded_stats;
        assert!(stmts > 0 && (stmts as u64) < ops / 10);
        // SCEV removal fired
        assert!(r.scev_removed.0 > 0);
        // static baseline must fail somewhere dynamic analysis succeeded
        assert!(!r.static_report.all_modeled());
    }

    #[test]
    fn doc_example_runs() {
        let workload = rodinia::backprop::build();
        let report = profile(&workload.program);
        assert!(report.feedback.regions[0].pct_parallel > 0.9);
    }

    /// The rayon suite driver must produce the same reports, in the same
    /// order, as a serial loop. (Full text is excluded: hash-map iteration
    /// order varies between map instances; the comparison uses the metric
    /// fields that feed the tables.)
    #[test]
    fn profile_all_matches_serial() {
        let workloads = [
            rodinia::backprop::build(),
            rodinia::nw::build(),
            rodinia::pathfinder::build(),
        ];
        let progs: Vec<&Program> = workloads.iter().map(|w| &w.program).collect();
        let par = profile_all(&progs);
        let ser: Vec<Report> = progs.iter().map(|p| profile(p)).collect();
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.folded_stats, s.folded_stats);
            assert_eq!(p.scev_removed, s.scev_removed);
            assert_eq!(p.feedback.pct_aff, s.feedback.pct_aff);
            assert_eq!(p.feedback.regions.len(), s.feedback.regions.len());
            for (pr, sr) in p.feedback.regions.iter().zip(&s.feedback.regions) {
                assert_eq!(pr.pct_parallel, sr.pct_parallel);
                assert_eq!(pr.pct_simd, sr.pct_simd);
            }
            assert_eq!(p.annotated_ast, s.annotated_ast);
        }
    }

    /// A panicking workload must surface as a panic naming the workload,
    /// carrying the original message — not a generic join error, and never
    /// a silently absorbed result.
    #[test]
    fn profile_all_with_propagates_worker_panics() {
        let items: Vec<u32> = (0..8).collect();
        let res = std::panic::catch_unwind(|| {
            profile_all_with(&items, |&i| {
                if i == 1 {
                    panic!("bad trip count {i}");
                }
                i * 2
            })
        });
        let payload = res.expect_err("worker panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("workload #1"), "missing attribution: {msg:?}");
        assert!(msg.contains("bad trip count 1"), "payload lost: {msg:?}");
    }
}
