//! # polyprof-core — the Poly-Prof pipeline, end to end
//!
//! The top-level API of the reproduction of *"Data-Flow/Dependence
//! Profiling for Structured Transformations"* (PPoPP 2019). One call —
//! [`profile`] — runs the whole Fig. 1 pipeline on a PolyVM program:
//!
//! 1. **Instrumentation I** (`polycfg`): dynamic CFG/CG recording, loop
//!    forests, recursive components;
//! 2. **Instrumentation II** (`polyiiv` + `polyddg`): dynamic
//!    interprocedural iteration vectors, shadow memory, dependence streams;
//! 3. **Folding** (`polyfold`): polyhedral compaction, SCEV removal,
//!    over-approximation;
//! 4. **Feedback** (`polysched` + `polyfeedback`): Pluto-style analysis and
//!    PolyFeat-style metrics, flame graphs, annotated ASTs.
//!
//! The static "Polly" baseline (`polystatic`) runs alongside for the
//! paper's Experiment II comparison.
//!
//! ```
//! use polyprof_core::profile;
//!
//! let workload = rodinia::backprop::build();
//! let report = profile(&workload.program);
//! assert!(report.feedback.regions[0].pct_parallel > 0.9);
//! println!("{}", report.annotated_ast);
//! ```

pub use polycfg;
pub use polyddg;
pub use polyfeedback;
pub use polyfold;
pub use polyiiv;
pub use polyir;
pub use polylib;
pub use polyrec;
pub use polyresist;
pub use polysched;
pub use polystatic;
pub use polytrace;
pub use polyvm;

pub use polyresist::{FaultPlan, FaultSite, PolyProfError, ResourceBudget, RunDegradation};
pub use polytrace::{MetricsLevel, ProgressSnapshot, RunMetrics};

use polyfeedback::metrics::ProgramFeedback;
use polyir::Program;
use polystatic::dataflow::StaticSummary;
use polystatic::lint::LintReport;
use polystatic::StaticReport;
use polytrace::{Collector, Counter, Stage};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything Poly-Prof produces for one program.
pub struct Report {
    /// PolyFeat-style metrics and suggestions (Tables 3–5 material).
    pub feedback: ProgramFeedback,
    /// The static "Polly" baseline verdicts (Experiment II).
    pub static_report: StaticReport,
    /// Annotated flame graph (SVG, Figs. 5b/7).
    pub flamegraph_svg: String,
    /// Simplified annotated AST of the nest forest (§6 "final output").
    pub annotated_ast: String,
    /// The complete textual feedback document (§6's "extensive" output:
    /// region statistics, dependence summary, transformation sequences,
    /// annotated AST).
    pub full_text: String,
    /// Folded-DDG statistics: (statements after folding+SCEV removal,
    /// dependences, dynamic ops) — the paper's scalability argument
    /// ("thousands of statements → a few hundred").
    pub folded_stats: (usize, usize, u64),
    /// Number of statements removed as SCEVs and dependences removed with
    /// them.
    pub scev_removed: (usize, usize),
    /// Instructions the static pre-pass proved SCEV (0 unless
    /// [`ProfileConfig::static_prune`] or [`ProfileConfig::lint`] ran it).
    pub static_scevs: usize,
    /// Folded statements whose register-dependence instrumentation was
    /// skipped by the static prune mask.
    pub pruned_stmts: usize,
    /// Register-dependence events skipped by the static prune mask.
    pub pruned_events: u64,
    /// Post-fold DDG lint verdict, when [`ProfileConfig::lint`] was set.
    pub lint: Option<LintReport>,
    /// The profiler's *own* run metrics — per-stage wall times, pipeline
    /// counters, and channel/cache gauges. `None` when the run was
    /// configured with [`MetricsLevel::Off`] (the default): the telemetry
    /// layer then costs nothing and the hot path stays allocation-free.
    pub metrics: Option<RunMetrics>,
    /// Everything the run lost or recovered from: injected faults, stage
    /// retries, dropped/malformed chunks, budget over-approximation, the
    /// watchdog deadline. All-default (check [`RunDegradation::is_degraded`])
    /// for a clean run — which every run without a fault plan or budget is.
    pub degradation: RunDegradation,
    /// Periodic live snapshots from the progress sampler, in sample order.
    /// Empty unless [`ProfileConfig::with_progress`] armed the watcher
    /// thread — this is the streaming primitive a monitoring frontend would
    /// subscribe to; batch runs get the full sequence after the fact.
    pub progress: Vec<ProgressSnapshot>,
}

impl Report {
    /// The run metrics as a JSON object string, or `None` at
    /// [`MetricsLevel::Off`]. Stable keys — this is what the bench harness
    /// snapshots into its `metrics.json` artifacts.
    pub fn metrics_json(&self) -> Option<String> {
        self.metrics.as_ref().map(|m| m.to_json())
    }

    /// Render the profiler's own stage tree as a flame graph SVG (the
    /// self-profile counterpart of [`Report::flamegraph_svg`]), or `None`
    /// at [`MetricsLevel::Off`].
    pub fn self_flamegraph_svg(&self, title: &str) -> Option<String> {
        self.metrics
            .as_ref()
            .map(|m| polyfeedback::self_flamegraph_svg(m, title))
    }

    /// Stable JSON rendering of the degradation counters — what the CI
    /// resilience gate snapshots next to its `metrics.json` artifacts.
    pub fn degradation_json(&self) -> String {
        self.degradation.to_json()
    }

    /// The run's timeline as Chrome trace-event JSON (loadable in Perfetto
    /// / `chrome://tracing`), or `None` below [`MetricsLevel::Trace`].
    pub fn timeline_json(&self) -> Option<String> {
        self.metrics
            .as_ref()
            .filter(|m| m.level >= MetricsLevel::Trace)
            .map(|m| m.timeline_json())
    }
}

/// Knobs of one profiling run (see `polyfold::pipeline` for the stage
/// anatomy). Construct through [`ProfileConfig::new`] and the `with_*`
/// builders — the struct is `#[non_exhaustive]` so future knobs can land
/// without breaking callers.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ProfileConfig {
    /// Folding worker threads. `1` (the default) keeps the fully serial
    /// single-thread path — retained verbatim and bit-compared against the
    /// pipeline by the sharded differential suite. Any larger value runs
    /// pass 2 as a staged pipeline with this many folding shards (plus the
    /// event-generation and shadow-resolution threads).
    pub fold_threads: usize,
    /// Events per pipeline chunk (batching granularity; ignored on the
    /// serial path).
    pub chunk_events: usize,
    /// Self-profiling level: [`MetricsLevel::Off`] (default, zero cost),
    /// `Counters` (hot-path tallies, harvested per stage), or `Timing`
    /// (counters + per-stage spans and channel stall clocks).
    pub metrics: MetricsLevel,
    /// Run the static affine pre-pass (`polystatic::dataflow`) and skip
    /// register-dependence instrumentation for statically-proven SCEV
    /// statements. The folded DDG after SCEV removal is byte-identical with
    /// this on or off (the differential suite proves it); the knob only
    /// trades static-analysis time for profiling work.
    pub static_prune: bool,
    /// Lint the folded DDG against the static summary (forest refinement,
    /// must-exist flow deps, partition disjointness, SCEV marks). Implies
    /// running the static pre-pass; does not imply pruning.
    pub lint: bool,
    /// Byte budget for retained profiling state (shadow pages, coordinate
    /// arena, per-statement folders). Crossing it latches *pressure*:
    /// folders switch to the paper's over-approximation mode (bounding box +
    /// label ranges) instead of allocating further precision state. `None`
    /// (default) tracks nothing.
    pub memory_budget: Option<u64>,
    /// Watchdog deadline for pass 2, measured from its start. When it fires
    /// the event producer stops gracefully and the run finalizes a partial
    /// but valid folded DDG (`Report::degradation.deadline_hit`).
    pub deadline: Option<Duration>,
    /// Deterministic fault-injection schedule. Setting it routes pass 2
    /// through the supervised pipeline regardless of `fold_threads`. `None`
    /// for production runs; the `POLYPROF_FAULT_PLAN` environment knob fills
    /// it for the CI resilience gate.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Failed supervised-pipeline attempts to retry before falling back to
    /// the serial path.
    pub max_retries: u32,
    /// Let the run *measure* its way to an executor instead of trusting
    /// `fold_threads`: a one-shot calibration (`polyfold::adaptive`)
    /// compares per-chunk fold cost against channel handoff cost and picks
    /// inline folding or K-shard pipelining. `fold_threads` then acts as
    /// the shard count to use *if* pipelining wins (`<= 1` = auto-size from
    /// the CPU count). The folded DDG is byte-identical either way; the
    /// chosen shard count lands in the `adaptive_shards` counter.
    pub adaptive: bool,
    /// Verify already-fitted affine candidates with overflow-checked `i64`
    /// dot products instead of exact rationals (falling back to the exact
    /// path on overflow or a non-integral fit). On — the default — is
    /// sample-for-sample equivalent to the rational path (the differential
    /// suite proves it); the knob exists so benches can measure the gap and
    /// tests can pin the equivalence.
    pub fast_fit: bool,
    /// Record the resolved event stream of pass 2 into a versioned `.ptrace`
    /// file at this path (see `polyrec`). The live fold is undisturbed; the
    /// recording can later be re-folded offline at any shard count via
    /// [`ProfileConfig::replay_from`] with byte-identical results. Ignored
    /// when `replay_from` is set (a replay has no VM run to tap).
    pub record_to: Option<PathBuf>,
    /// Skip the pass-2 VM run entirely and fold a `.ptrace` recording from
    /// this path instead. Pass 1 still executes (the structure feeds the
    /// scheduling/feedback stages); the recording's program hash must match
    /// `prog`. Fault injection, budgets, and pruning do not apply to a
    /// replayed fold — the stream on disk is already final.
    pub replay_from: Option<PathBuf>,
    /// Sampling interval for the live-progress watcher thread. `None`
    /// (default) spawns nothing. When set, a sampler thread snapshots the
    /// run's counters and gauges every interval into
    /// [`Report::progress`]; a run configured at [`MetricsLevel::Off`] is
    /// quietly upgraded to `Counters` so there is something to sample.
    pub progress: Option<Duration>,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            fold_threads: 1,
            chunk_events: 4096,
            metrics: MetricsLevel::Off,
            static_prune: false,
            lint: false,
            memory_budget: None,
            deadline: None,
            fault_plan: None,
            max_retries: 2,
            adaptive: false,
            fast_fit: true,
            record_to: None,
            replay_from: None,
            progress: None,
        }
    }
}

impl ProfileConfig {
    /// The default configuration: serial folding, 4096-event chunks,
    /// metrics off.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the folding worker count (`>1` engages the staged pipeline).
    pub fn with_fold_threads(mut self, n: usize) -> Self {
        self.fold_threads = n;
        self
    }

    /// Set the events-per-chunk batching granularity of the pipeline.
    pub fn with_chunk_events(mut self, n: usize) -> Self {
        self.chunk_events = n;
        self
    }

    /// Set the self-profiling level.
    pub fn with_metrics(mut self, level: MetricsLevel) -> Self {
        self.metrics = level;
        self
    }

    /// Enable static instrumentation pruning.
    pub fn with_static_prune(mut self, on: bool) -> Self {
        self.static_prune = on;
        self
    }

    /// Enable the post-fold DDG lint.
    pub fn with_lint(mut self, on: bool) -> Self {
        self.lint = on;
        self
    }

    /// Cap retained profiling state at `bytes`; on pressure, per-statement
    /// folding degrades to over-approximation instead of failing.
    pub fn with_memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Set a pass-2 watchdog deadline; when it fires the run finalizes a
    /// partial but valid folded DDG.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Arm a deterministic fault-injection schedule (tests / CI gate).
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Set the supervised-pipeline retry bound.
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Let a calibration pass choose between inline folding and K-shard
    /// pipelining at runtime (see [`ProfileConfig::adaptive`]).
    pub fn with_adaptive(mut self, on: bool) -> Self {
        self.adaptive = on;
        self
    }

    /// Toggle the integer fast-path fit verifier (see
    /// [`ProfileConfig::fast_fit`]; on by default).
    pub fn with_fast_fit(mut self, on: bool) -> Self {
        self.fast_fit = on;
        self
    }

    /// Record the resolved pass-2 event stream to a `.ptrace` file (see
    /// [`ProfileConfig::record_to`]).
    pub fn with_record_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.record_to = Some(path.into());
        self
    }

    /// Fold a `.ptrace` recording instead of re-running the VM (see
    /// [`ProfileConfig::replay_from`]).
    pub fn with_replay_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.replay_from = Some(path.into());
        self
    }

    /// Arm the live-progress sampler at this interval (see
    /// [`ProfileConfig::progress`]).
    pub fn with_progress(mut self, interval: Duration) -> Self {
        self.progress = Some(interval);
        self
    }
}

/// Run the full Poly-Prof pipeline (both instrumentation passes, folding,
/// scheduling, feedback) plus the static baseline.
pub fn profile(prog: &Program) -> Report {
    profile_with(prog, &ProfileConfig::default())
}

/// As [`profile`], with explicit threading configuration. The sharded
/// pipeline produces byte-identical reports to the serial path; the knobs
/// only trade wall-clock for threads.
///
/// Back-compat panicking wrapper around [`try_profile_with`] — it panics
/// with the rendered [`PolyProfError`] on the (rare) unrecoverable failures
/// that survive supervision, such as a deterministic VM error.
pub fn profile_with(prog: &Program, cfg: &ProfileConfig) -> Report {
    match try_profile_with(prog, cfg) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible sibling of [`profile_with`]: every failure mode the supervised
/// pipeline cannot absorb (bad program, deterministic VM error, malformed
/// fault-plan spec) surfaces as a structured [`PolyProfError`] instead of a
/// panic. Recoverable trouble — injected faults, stage panics, budget
/// pressure, the watchdog deadline — still yields `Ok`, with the losses
/// recorded in [`Report::degradation`].
pub fn try_profile_with(prog: &Program, cfg: &ProfileConfig) -> Result<Report, PolyProfError> {
    // Telemetry: one fixed-slot collector per run when metrics are on; no
    // allocation and no clock reads at `Off` (the zero-alloc gate runs the
    // default config through this exact path). An armed progress sampler
    // needs counters to sample, so it lifts `Off` to `Counters`.
    let metrics_level = if cfg.progress.is_some() && cfg.metrics == MetricsLevel::Off {
        MetricsLevel::Counters
    } else {
        cfg.metrics
    };
    let trace = (metrics_level != MetricsLevel::Off)
        .then(|| (Arc::new(Collector::new(metrics_level)), Instant::now()));

    // Pass 1: dynamic control structure.
    let structure = {
        let _span = trace.as_ref().map(|(c, _)| c.span(Stage::Structure));
        let mut rec = polycfg::StructureRecorder::new();
        polyvm::Vm::new(prog)
            .run(&[], &mut rec)
            .map_err(|e| PolyProfError::Vm {
                stage: "pass-1",
                msg: e.to_string(),
            })?;
        polycfg::StaticStructure::analyze(prog, rec)
    };

    // Resilience hooks. The fault plan comes from the config or, for the CI
    // resilience gate, the `POLYPROF_FAULT_PLAN` environment knob; a budget
    // exists only when a byte limit or deadline was configured. Both stay
    // `None` on production runs — every downstream hook is then one skipped
    // branch on a cold path.
    let fault_plan = cfg
        .fault_plan
        .clone()
        .or_else(|| FaultPlan::from_env().map(Arc::new));
    let budget = (cfg.memory_budget.is_some() || cfg.deadline.is_some())
        .then(|| Arc::new(ResourceBudget::new(cfg.memory_budget, cfg.deadline)));

    // Live-progress sampler: a watcher thread snapshotting counters/gauges
    // every interval into a bounded channel. Purely observational — it only
    // ever *reads* the collector's atomics, so the profiled run is
    // undisturbed; a full channel drops the newest sample rather than block.
    let sampler = match (cfg.progress, &trace) {
        (Some(interval), Some((c, _))) => {
            Some(spawn_sampler(interval, Arc::clone(c), budget.clone()))
        }
        _ => None,
    };

    // Static affine pre-pass: SCEV proofs, prune mask, lint inputs. Runs
    // only when the hybrid knobs ask for it — the classic dynamic-only
    // pipeline pays nothing.
    let summary = (cfg.static_prune || cfg.lint).then(|| {
        let _span = trace.as_ref().map(|(c, _)| c.span(Stage::StaticPass));
        let summary = StaticSummary::analyze(prog);
        if let Some((c, _)) = &trace {
            c.add(Counter::StaticScevStmts, summary.n_scev() as u64);
        }
        summary
    });
    let prune = cfg
        .static_prune
        .then(|| summary.as_ref().expect("summary computed").prune_mask());

    // Folding options shared by every executor this run may pick.
    let fold_options = polyfold::FoldOptions {
        fast_fit: cfg.fast_fit,
        ..Default::default()
    };

    // Adaptive executor: calibrate fold cost against chunk handoff cost and
    // resolve the effective shard count *before* the run — the output is
    // byte-identical either way, so the decision only trades wall-clock.
    let fold_threads = if cfg.adaptive {
        let d = polyfold::adaptive::decide(cfg.fold_threads, cfg.chunk_events, fold_options);
        if let Some((c, _)) = &trace {
            c.add(Counter::AdaptiveShards, d.fold_threads as u64);
        }
        d.fold_threads
    } else {
        cfg.fold_threads
    };

    // Pass 2: DDG streaming into the folding sink — a replayed recording
    // (no VM), serial in-line (optionally tapped by a recorder), or the
    // supervised staged pipeline when more than one folding thread (or a
    // fault plan, whose injection sites live in the pipeline stages) is
    // requested.
    let mut degradation = RunDegradation::default();
    let (mut ddg, interner, pruned_events) = if let Some(path) = &cfg.replay_from {
        let _span = trace.as_ref().map(|(c, _)| c.span(Stage::Profile));
        let (ddg, interner) = polyfold::replay::fold_recording(
            path,
            prog,
            fold_threads,
            fold_options,
            trace.as_ref().map(|(c, _)| c),
        )?;
        (ddg, interner, 0)
    } else if fold_threads <= 1 && fault_plan.is_none() {
        let chunk_events = cfg.chunk_events.max(1);
        let (sink, interner, pruned_events) = {
            let _span = trace.as_ref().map(|(c, _)| c.span(Stage::Profile));
            let mut out = polyfold::FoldingSink::with_options(fold_options);
            if let Some(b) = &budget {
                out.set_budget(Arc::clone(b));
            }
            match &cfg.record_to {
                Some(path) => {
                    let writer = polyrec::TraceWriter::create(path, prog, chunk_events)?;
                    let tap = polyrec::Recorder::new(writer, chunk_events, out);
                    let (tap, interner, pruned_events) = serial_pass2(
                        prog,
                        &structure,
                        tap,
                        &prune,
                        &budget,
                        trace.as_ref().map(|(c, _)| c),
                        &mut degradation,
                    )?;
                    let (sink, wstats) = tap.finish(&interner)?;
                    if let Some((c, _)) = &trace {
                        c.add(Counter::RecFramesWritten, wstats.frames);
                        c.add(Counter::RecBytesWritten, wstats.bytes);
                    }
                    (sink, interner, pruned_events)
                }
                None => serial_pass2(
                    prog,
                    &structure,
                    out,
                    &prune,
                    &budget,
                    trace.as_ref().map(|(c, _)| c),
                    &mut degradation,
                )?,
            }
        };
        if let Some((c, _)) = &trace {
            let (hits, misses) = interner.cache_stats();
            c.add(Counter::CtxCacheHit, hits);
            c.add(Counter::CtxCacheMiss, misses);
            let fs = sink.fold_stats();
            c.add(Counter::EventsFolded, fs.events_folded);
            c.add(Counter::DepsFolded, fs.deps_folded);
            c.add(Counter::ChunksFolded, fs.chunks_folded);
        }
        degradation.budget_overapprox_stmts = sink.fold_stats().budget_degraded;
        if let Some(b) = &budget {
            degradation.budget_pressure = b.under_pressure();
            degradation.peak_tracked_bytes = b.peak_bytes();
            if b.deadline_was_hit() {
                degradation.deadline_hit = true;
            }
            if let Some((c, _)) = &trace {
                c.add(
                    Counter::BudgetOverapprox,
                    degradation.budget_overapprox_stmts,
                );
                if degradation.deadline_hit {
                    c.add(Counter::DeadlineHits, 1);
                }
            }
        }
        let ddg = {
            let _span = trace.as_ref().map(|(c, _)| c.span(Stage::Finalize));
            sink.finalize(prog, &interner)
        };
        (ddg, interner, pruned_events)
    } else {
        let _span = trace.as_ref().map(|(c, _)| c.span(Stage::Profile));
        let pcfg = polyfold::pipeline::PipelineConfig {
            fold_threads,
            chunk_events: cfg.chunk_events,
            options: fold_options,
            ..Default::default()
        };
        let rcfg = polyfold::pipeline::ResilienceConfig {
            faults: fault_plan.clone(),
            budget: budget.clone(),
            max_retries: cfg.max_retries,
            ..Default::default()
        };
        let (ddg, interner, pruned_events, deg) = polyfold::pipeline::fold_pipelined_supervised(
            prog,
            &structure,
            &pcfg,
            trace.as_ref().map(|(c, _)| c),
            prune.clone(),
            cfg.record_to.as_deref(),
            &rcfg,
        )?;
        degradation = deg;
        (ddg, interner, pruned_events)
    };

    // Post-fold, pre-removal: count pruned statements and lint the DDG
    // against the static claims (the lint must see the SCEV statements and
    // their dependences before removal deletes them).
    let pruned_stmts = match &prune {
        Some(m) => ddg
            .stmts
            .values()
            .filter(|s| m.contains(interner.stmt_info(s.stmt).instr))
            .count(),
        None => 0,
    };
    if let Some((c, _)) = &trace {
        c.add(Counter::PrunedStmts, pruned_stmts as u64);
    }
    let lint = cfg.lint.then(|| {
        let _span = trace.as_ref().map(|(c, _)| c.span(Stage::Lint));
        let rep = polystatic::lint::lint_ddg(
            prog,
            summary.as_ref().expect("summary computed"),
            &ddg,
            &interner,
            &structure,
        );
        if let Some((c, _)) = &trace {
            c.add(Counter::LintChecks, rep.checks);
            c.add(Counter::LintViolations, rep.violations.len() as u64);
        }
        rep
    });
    let static_scevs = summary.as_ref().map(|s| s.n_scev()).unwrap_or(0);

    let scev_removed = {
        let _span = trace.as_ref().map(|(c, _)| c.span(Stage::ScevRemoval));
        ddg.remove_scevs()
    };
    if let Some((c, _)) = &trace {
        c.add(Counter::RetiredStmts, scev_removed.0 as u64);
        c.add(Counter::RetiredDeps, scev_removed.1 as u64);
        c.add(Counter::OverapproxStmts, ddg.overapprox_stmts() as u64);
    }

    // Stage 4: scheduling + feedback.
    let analysis = {
        let _span = trace.as_ref().map(|(c, _)| c.span(Stage::Schedule));
        polysched::Analysis::analyze(&ddg, &interner)
    };
    let input = polyfeedback::FeedbackInput {
        prog,
        ddg: &ddg,
        interner: &interner,
        structure: &structure,
        analysis: &analysis,
    };
    let (feedback, full_text) = {
        let _span = trace.as_ref().map(|(c, _)| c.span(Stage::Feedback));
        let feedback = polyfeedback::metrics::compute(&input);
        let full_text = polyfeedback::full_report(&input, &feedback);
        (feedback, full_text)
    };
    let (flamegraph_svg, annotated_ast) = {
        let _span = trace.as_ref().map(|(c, _)| c.span(Stage::Render));
        (
            polyfeedback::flamegraph_svg(&input, &prog.name),
            polyfeedback::annotated_ast(&input),
        )
    };
    let static_report = {
        let _span = trace.as_ref().map(|(c, _)| c.span(Stage::StaticBaseline));
        polystatic::analyze_program(prog)
    };

    let full_text = match &summary {
        Some(s) => {
            let section = polyfeedback::static_pass_section(
                s.n_scev(),
                pruned_stmts,
                pruned_events,
                lint.as_ref(),
            );
            format!("{full_text}\n{section}")
        }
        None => full_text,
    };
    // Degraded runs carry their loss accounting into the feedback document;
    // clean runs (the overwhelmingly common case) append nothing, keeping
    // their text byte-identical to pre-supervision output.
    let full_text = if degradation.is_degraded() {
        let section = polyfeedback::degradation_section(&degradation);
        format!("{full_text}\n{section}")
    } else {
        full_text
    };

    // Stop the sampler (if any) *before* freezing the metrics snapshot, so
    // no sample is taken concurrently with the drain of trace journals.
    let progress = match sampler {
        Some(s) => s.finish(),
        None => Vec::new(),
    };

    let metrics = trace.map(|(c, t0)| c.snapshot(t0.elapsed().as_nanos() as u64));
    // VM opcode telemetry only exists at `Timing`+, so `Off`/`Counters`
    // reports stay byte-identical to pre-telemetry output.
    let full_text = match &metrics {
        Some(m) if !m.vm_ops.is_empty() => {
            let section = polyfeedback::vm_profile_section(m);
            format!("{full_text}\n{section}")
        }
        _ => full_text,
    };
    Ok(Report {
        feedback,
        static_report,
        flamegraph_svg,
        annotated_ast,
        full_text,
        folded_stats: (ddg.n_stmts(), ddg.deps.len(), ddg.total_ops),
        scev_removed,
        static_scevs,
        pruned_stmts,
        pruned_events,
        lint,
        metrics,
        degradation,
        progress,
    })
}

/// A running progress sampler: stop flag + join handle + the bounded
/// snapshot channel's receiving end.
struct Sampler {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: std::thread::JoinHandle<()>,
    rx: std::sync::mpsc::Receiver<polytrace::ProgressSnapshot>,
}

/// Most snapshots a run retains; older runs stream, batch runs truncate.
/// At the default-ish 100ms interval this covers a ~100s run.
const PROGRESS_CAP: usize = 1024;

fn spawn_sampler(
    interval: Duration,
    col: Arc<Collector>,
    budget: Option<Arc<ResourceBudget>>,
) -> Sampler {
    use std::sync::atomic::{AtomicBool, Ordering};
    let stop = Arc::new(AtomicBool::new(false));
    let stop_t = Arc::clone(&stop);
    let (tx, rx) = std::sync::mpsc::sync_channel(PROGRESS_CAP);
    let handle = std::thread::spawn(move || {
        let mut prev_t = 0u64;
        let mut prev_folded = 0u64;
        while !stop_t.load(Ordering::Relaxed) {
            std::thread::park_timeout(interval);
            if stop_t.load(Ordering::Relaxed) {
                break;
            }
            let t_ns = col.now_ns();
            let mut snap = col.progress(t_ns);
            let dt = t_ns.saturating_sub(prev_t);
            if dt > 0 {
                snap.events_per_sec =
                    snap.events_folded.saturating_sub(prev_folded) as f64 * 1e9 / dt as f64;
            }
            prev_t = t_ns;
            prev_folded = snap.events_folded;
            if let Some(b) = &budget {
                snap.budget_used_bytes = b.used_bytes();
                snap.budget_pressure = b.under_pressure();
                snap.deadline_remaining_ns = b.deadline_remaining().map(|d| d.as_nanos() as u64);
            }
            // Bounded: when the consumer lags PROGRESS_CAP samples behind,
            // drop the newest instead of blocking the sampler.
            let _ = tx.try_send(snap);
        }
    });
    Sampler { stop, handle, rx }
}

impl Sampler {
    /// Stop the watcher thread and drain every snapshot it took.
    fn finish(self) -> Vec<polytrace::ProgressSnapshot> {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        self.handle.thread().unpark();
        let _ = self.handle.join();
        self.rx.try_iter().collect()
    }
}

/// The serial pass-2 body, generic over the folding sink so the recording
/// tap ([`polyrec::Recorder`] around a [`polyfold::FoldingSink`]) reuses the
/// exact VM-drive/harvest sequence of the plain path. Returns the sink, the
/// interner, and the pruned-event count.
fn serial_pass2<S: polyddg::FoldSink>(
    prog: &Program,
    structure: &polycfg::StaticStructure,
    sink: S,
    prune: &Option<Arc<polyddg::prune::PruneMask>>,
    budget: &Option<Arc<ResourceBudget>>,
    trace: Option<&Arc<Collector>>,
    degradation: &mut RunDegradation,
) -> Result<(S, polyiiv::context::ContextInterner, u64), PolyProfError> {
    let mut prof = polyddg::DdgProfiler::new(prog, structure, sink);
    if let Some(m) = prune {
        prof.set_prune_mask(Arc::clone(m));
    }
    if let Some(b) = budget {
        prof.set_budget(Arc::clone(b));
    }
    let mut vm = polyvm::Vm::new(prog);
    if let Some(c) = trace {
        // Opcode telemetry is plain-u64 counting at `Timing`, plus sampled
        // dispatch timing at `Trace`; `Off`/`Counters` never arm it.
        if c.timing() {
            vm.enable_opcode_telemetry(c.tracing());
        }
    }
    match vm.run(&[], &mut prof) {
        Ok(_) => {}
        // The budget watchdog asked for a graceful stop: finalize the
        // partial-but-valid folded state observed so far.
        Err(polyvm::VmError::Aborted) => degradation.deadline_hit = true,
        Err(e) => {
            return Err(PolyProfError::Vm {
                stage: "pass-2",
                msg: e.to_string(),
            })
        }
    }
    if let Some(c) = trace {
        if let Some(t) = vm.take_opcode_telemetry() {
            t.harvest(c);
        }
        c.add(Counter::DynOps, prof.dyn_ops);
        c.add(Counter::MemEvents, prof.mem_events);
        c.add(Counter::PrunedEvents, prof.pruned_events);
        let (hits, misses) = prof.shadow_mru_stats();
        c.add(Counter::ShadowMruHit, hits);
        c.add(Counter::ShadowMruMiss, misses);
        c.add(Counter::ShadowPages, prof.resident_shadow_pages() as u64);
        c.add(Counter::ArenaBytes, prof.arena_bytes() as u64);
    }
    let pruned_events = prof.pruned_events;
    let (sink, interner) = prof.finish();
    Ok((sink, interner, pruned_events))
}

/// Run [`profile`] over a whole suite, fanning the workloads across threads.
///
/// Every profiling run owns its VM, shadow memory, and folding state, so
/// workloads are embarrassingly parallel; results come back in input order,
/// identical to a serial `progs.iter().map(profile)` loop. This is the
/// driver behind the Table 5 / ablation suite runs.
pub fn profile_all<P: std::borrow::Borrow<Program> + Sync>(progs: &[P]) -> Vec<Report> {
    profile_all_with(progs, |p| profile(p.borrow()))
}

/// Generalized suite driver: apply `f` to each item in parallel, preserving
/// input order. Use this when the per-workload step needs more than
/// [`profile`] (extra configs, paired metadata, custom sinks).
///
/// A panicking workload re-panics on the caller with a payload that names
/// the originating item (`workload #i panicked: <original message>`), so a
/// red CI run points at the failing workload instead of a bare join error.
pub fn profile_all_with<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use rayon::prelude::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    items
        .par_iter()
        .enumerate()
        .map(
            |(i, item)| match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(r) => r,
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&'static str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    std::panic::panic_any(format!("workload #{i} panicked: {msg}"))
                }
            },
        )
        .collect()
}

/// Suite driver with per-workload telemetry: profile every program with
/// `cfg` in parallel (same ordering guarantees as [`profile_all`]) and log
/// one line per workload — its name, wall time, and the peak event-chunk
/// depth seen on any pipeline channel — to stderr. The peak depth reads `0`
/// unless `cfg` enables metrics *and* the pipelined path (`fold_threads >
/// 1`), since the serial path has no channels.
pub fn profile_suite<P: std::borrow::Borrow<Program> + Sync>(
    progs: &[P],
    cfg: &ProfileConfig,
) -> Vec<Report> {
    profile_all_with(progs, |p| {
        let t0 = Instant::now();
        let r = profile_with(p.borrow(), cfg);
        let wall = t0.elapsed();
        let peak = r
            .metrics
            .as_ref()
            .map(|m| m.counter(Counter::QueuePeakDepth))
            .unwrap_or(0);
        eprintln!(
            "[poly-prof] {:<16} wall {:>10.3?}  peak chunk depth {}",
            p.borrow().name,
            wall,
            peak
        );
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_backprop_end_to_end() {
        let w = rodinia::backprop::build();
        let r = profile(&w.program);
        assert!(!r.feedback.regions.is_empty());
        assert!(r.flamegraph_svg.contains("<svg"));
        assert!(r.annotated_ast.contains("for"));
        // folding compacts: way fewer statements than dynamic ops
        let (stmts, _deps, ops) = r.folded_stats;
        assert!(stmts > 0 && (stmts as u64) < ops / 10);
        // SCEV removal fired
        assert!(r.scev_removed.0 > 0);
        // static baseline must fail somewhere dynamic analysis succeeded
        assert!(!r.static_report.all_modeled());
    }

    #[test]
    fn doc_example_runs() {
        let workload = rodinia::backprop::build();
        let report = profile(&workload.program);
        assert!(report.feedback.regions[0].pct_parallel > 0.9);
    }

    /// The rayon suite driver must produce the same reports, in the same
    /// order, as a serial loop. (Full text is excluded: hash-map iteration
    /// order varies between map instances; the comparison uses the metric
    /// fields that feed the tables.)
    #[test]
    fn profile_all_matches_serial() {
        let workloads = [
            rodinia::backprop::build(),
            rodinia::nw::build(),
            rodinia::pathfinder::build(),
        ];
        let progs: Vec<&Program> = workloads.iter().map(|w| &w.program).collect();
        let par = profile_all(&progs);
        let ser: Vec<Report> = progs.iter().map(|p| profile(p)).collect();
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.folded_stats, s.folded_stats);
            assert_eq!(p.scev_removed, s.scev_removed);
            assert_eq!(p.feedback.pct_aff, s.feedback.pct_aff);
            assert_eq!(p.feedback.regions.len(), s.feedback.regions.len());
            for (pr, sr) in p.feedback.regions.iter().zip(&s.feedback.regions) {
                assert_eq!(pr.pct_parallel, sr.pct_parallel);
                assert_eq!(pr.pct_simd, sr.pct_simd);
            }
            assert_eq!(p.annotated_ast, s.annotated_ast);
        }
    }

    /// A panicking workload must surface as a panic naming the workload,
    /// carrying the original message — not a generic join error, and never
    /// a silently absorbed result.
    #[test]
    fn profile_all_with_propagates_worker_panics() {
        let items: Vec<u32> = (0..8).collect();
        let res = std::panic::catch_unwind(|| {
            profile_all_with(&items, |&i| {
                if i == 1 {
                    panic!("bad trip count {i}");
                }
                i * 2
            })
        });
        let payload = res.expect_err("worker panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("workload #1"), "missing attribution: {msg:?}");
        assert!(msg.contains("bad trip count 1"), "payload lost: {msg:?}");
    }
}
