//! GemsFDTD update kernels, original and transformed (paper Table 4).
//!
//! The paper tiles all three spatial dimensions (size 32) and marks the
//! outermost loop `OMP PARALLEL DO`; `updateE_homo` went 1.3 → 2.7 GFlop/s
//! and `updateH_homo` 1.3 → 3.7 GFlop/s on a 2×6-core Xeon.
//!
//! Reproduction notes. The Fortran arrays are indexed `A(i,j,k)`
//! (column-major: `i` fastest); the binary's hot nests sweep `i` in the
//! *outermost* position (the paper's Table 4 regions list the loop lines
//! outermost-first), so the innermost traversal is large-stride — the
//! locality problem tiling fixes. Poly-Prof proves the band fully
//! permutable, which legalizes (a) tiling and (b) choosing a stride-1
//! intra-tile order, plus (c) parallelizing the outermost tile loop. On a
//! single-core host only (a)+(b) can show; on multicore (c) adds the
//! paper's thread-level factor. The transformed kernel does all three.

use rayon::prelude::*;

/// Tile edge used by the transformed variants (paper uses 32).
pub const TILE: usize = 16;

/// State arrays for one field pair on an `n³` grid, column-major
/// (`idx = i + j·n + k·n²`, `i` fastest — Fortran layout).
pub struct Grid {
    /// Grid edge.
    pub n: usize,
    /// H-field x component.
    pub hx: Vec<f64>,
    /// H-field y component.
    pub hy: Vec<f64>,
    /// E-field x component.
    pub ex: Vec<f64>,
    /// E-field y component.
    pub ey: Vec<f64>,
}

impl Grid {
    /// Deterministic non-uniform initial fields.
    pub fn new(n: usize) -> Grid {
        let cells = n * n * n;
        Grid {
            n,
            hx: vec![0.0; cells],
            hy: vec![0.0; cells],
            ex: (0..cells)
                .map(|i| ((i * 31 + 3) % 17) as f64 * 0.05)
                .collect(),
            ey: (0..cells)
                .map(|i| ((i * 13 + 5) % 23) as f64 * 0.04)
                .collect(),
        }
    }
}

#[inline(always)]
fn idx(n: usize, i: usize, j: usize, k: usize) -> usize {
    i + j * n + k * n * n
}

/// Original `updateH_homo`: the binary sweeps `i` outermost / `k`
/// innermost over the column-major arrays — innermost stride `n²`.
pub fn update_h_original(g: &mut Grid) {
    let n = g.n;
    for i in 0..n - 1 {
        for j in 0..n - 1 {
            for k in 0..n - 1 {
                let c = idx(n, i, j, k);
                g.hx[c] += 0.5 * (g.ex[idx(n, i + 1, j, k)] - g.ex[c]);
                g.hy[c] += 0.5 * (g.ey[idx(n, i, j + 1, k)] - g.ey[c]);
            }
        }
    }
}

/// Original `updateE_homo` (same traversal order).
pub fn update_e_original(g: &mut Grid) {
    let n = g.n;
    for i in 1..n {
        for j in 1..n {
            for k in 1..n {
                let c = idx(n, i, j, k);
                g.ex[c] += 0.5 * (g.hx[c] - g.hx[idx(n, i - 1, j, k)]);
                g.ey[c] += 0.5 * (g.hy[c] - g.hy[idx(n, i, j - 1, k)]);
            }
        }
    }
}

/// Transformed `updateH_homo`: the fully-permutable band is tiled
/// (TILE³), the intra-tile order is flipped so the fastest-varying array
/// dimension (`i`) is innermost (stride-1), and the outermost tile loop
/// runs in parallel. Writes at `(i,j,k)` only read `i+1`/`j+1` neighbors,
/// so partitioning by `k`-tiles is race-free (reads stay in the same `k`).
pub fn update_h_transformed(g: &mut Grid) {
    let n = g.n;
    let plane = n * n;
    let ex = &g.ex;
    let ey = &g.ey;
    // chunk by k-planes: each chunk covers TILE planes of hx/hy
    let hx_chunks = g.hx[..(n - 1) * plane + plane].par_chunks_mut(plane * TILE);
    let hy_chunks = g.hy.par_chunks_mut(plane * TILE);
    hx_chunks
        .zip(hy_chunks)
        .enumerate()
        .for_each(|(t, (hx, hy))| {
            let k0 = t * TILE;
            let kend = (k0 + TILE).min(n - 1);
            if k0 >= n - 1 {
                return;
            }
            for j0 in (0..n - 1).step_by(TILE) {
                for i0 in (0..n - 1).step_by(TILE) {
                    for k in k0..kend {
                        let klocal = k - k0;
                        for j in j0..(j0 + TILE).min(n - 1) {
                            let base = j * n + klocal * plane; // chunk-local
                            let gbase = j * n + k * plane; // global
                            for i in i0..(i0 + TILE).min(n - 1) {
                                let l = base + i;
                                let c = gbase + i;
                                hx[l] += 0.5 * (ex[c + 1] - ex[c]);
                                hy[l] += 0.5 * (ey[c + n] - ey[c]);
                            }
                        }
                    }
                }
            }
        });
}

/// Transformed `updateE_homo` (reads H at `i-1`/`j-1`, same k-plane:
/// k-tile partitioning remains race-free).
pub fn update_e_transformed(g: &mut Grid) {
    let n = g.n;
    let plane = n * n;
    let hx = &g.hx;
    let hy = &g.hy;
    let ex_chunks = g.ex.par_chunks_mut(plane * TILE);
    let ey_chunks = g.ey.par_chunks_mut(plane * TILE);
    ex_chunks
        .zip(ey_chunks)
        .enumerate()
        .for_each(|(t, (ex, ey))| {
            let k0 = (t * TILE).max(1);
            let kend = ((t * TILE) + TILE).min(n);
            if k0 >= n {
                return;
            }
            for j0 in (1..n).step_by(TILE) {
                for i0 in (1..n).step_by(TILE) {
                    for k in k0..kend {
                        let klocal = k - t * TILE;
                        for j in j0..(j0 + TILE).min(n) {
                            let base = j * n + klocal * plane;
                            let gbase = j * n + k * plane;
                            for i in i0..(i0 + TILE).min(n) {
                                let l = base + i;
                                let c = gbase + i;
                                ex[l] += 0.5 * (hx[c] - hx[c - 1]);
                                ey[l] += 0.5 * (hy[c] - hy[c - n]);
                            }
                        }
                    }
                }
            }
        });
}

/// Run `steps` time steps with the original kernels.
pub fn run_original(g: &mut Grid, steps: usize) {
    for _ in 0..steps {
        update_h_original(g);
        update_e_original(g);
    }
}

/// Run `steps` time steps with the transformed kernels.
pub fn run_transformed(g: &mut Grid, steps: usize) {
    for _ in 0..steps {
        update_h_transformed(g);
        update_e_transformed(g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_abs_diff;

    #[test]
    fn transformed_matches_original() {
        let mut a = Grid::new(20);
        let mut b = Grid::new(20);
        run_original(&mut a, 3);
        run_transformed(&mut b, 3);
        assert!(max_abs_diff(&a.hx, &b.hx) < 1e-12);
        assert!(max_abs_diff(&a.hy, &b.hy) < 1e-12);
        assert!(max_abs_diff(&a.ex, &b.ex) < 1e-12);
        assert!(max_abs_diff(&a.ey, &b.ey) < 1e-12);
    }

    #[test]
    fn transformed_matches_original_non_tile_multiple() {
        // grid edge not a multiple of TILE exercises the ragged tiles
        let mut a = Grid::new(TILE + 5);
        let mut b = Grid::new(TILE + 5);
        run_original(&mut a, 2);
        run_transformed(&mut b, 2);
        assert!(max_abs_diff(&a.ex, &b.ex) < 1e-12);
        assert!(max_abs_diff(&a.hy, &b.hy) < 1e-12);
    }

    #[test]
    fn fields_evolve() {
        let mut g = Grid::new(12);
        let before: f64 = g.hx.iter().map(|v| v.abs()).sum();
        run_original(&mut g, 2);
        let after: f64 = g.hx.iter().map(|v| v.abs()).sum();
        assert!(after > before, "H field must pick up energy");
    }
}
