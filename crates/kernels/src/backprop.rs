//! backprop's two kernels, original and transformed (paper Table 3).
//!
//! * `bpnn_layerforward`: original walks `conn` column-wise (stride `n2+1`
//!   in the inner reduction). The suggested interchange (plus scalar
//!   expansion of `sum` into the output array) makes the inner loop walk
//!   rows stride-1, vectorizable. Paper: 0.5 → 2.8 GFlop/s (≈5.3×
//!   reported in Table 3 with parallelism).
//! * `bpnn_adjust_weights`: original is `j`-outer / `k`-inner with
//!   column-stride accesses; interchanged + parallel version walks rows and
//!   splits them across threads. Paper: 0.3 → 5.1 GFlop/s (≈7.8×).

use rayon::prelude::*;

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Original `bpnn_layerforward`: for each output `j`, reduce over `k` with
/// column-major (strided) access to `conn[k][j]`.
pub fn layerforward_original(l1: &[f64], l2: &mut [f64], conn: &[f64], n1: usize, n2: usize) {
    let ld = n2 + 1;
    for j in 1..=n2 {
        let mut sum = 0.0;
        for k in 0..=n1 {
            sum += conn[k * ld + j] * l1[k];
        }
        l2[j] = sigmoid(sum);
    }
}

/// Transformed `bpnn_layerforward`: interchange (k outer, j inner) with
/// `sum` array-expanded into `l2` — the inner loop is stride-1 over a row
/// of `conn` and auto-vectorizes.
pub fn layerforward_interchanged(l1: &[f64], l2: &mut [f64], conn: &[f64], n1: usize, n2: usize) {
    let ld = n2 + 1;
    for x in l2[1..=n2].iter_mut() {
        *x = 0.0;
    }
    for k in 0..=n1 {
        let row = &conn[k * ld..k * ld + ld];
        let xk = l1[k];
        for j in 1..=n2 {
            l2[j] += row[j] * xk;
        }
    }
    for x in l2[1..=n2].iter_mut() {
        *x = sigmoid(*x);
    }
}

/// Transformed + parallel `bpnn_layerforward`: the j range is chunked
/// across threads (outer loop parallel after interchange back — each chunk
/// reduces columns independently but walks rows in the cache-friendly
/// order via blocking).
#[allow(clippy::needless_range_loop)] // indexed loops mirror the C kernel
pub fn layerforward_parallel(l1: &[f64], l2: &mut [f64], conn: &[f64], n1: usize, n2: usize) {
    let ld = n2 + 1;
    let chunk = 256
        .max(n2 / (4 * rayon::current_num_threads().max(1)))
        .max(1);
    l2[1..=n2]
        .par_chunks_mut(chunk)
        .enumerate()
        .for_each(|(ci, out)| {
            let j0 = 1 + ci * chunk;
            for x in out.iter_mut() {
                *x = 0.0;
            }
            for k in 0..=n1 {
                let base = k * ld;
                let xk = l1[k];
                for (jj, x) in out.iter_mut().enumerate() {
                    *x += conn[base + j0 + jj] * xk;
                }
            }
            for x in out.iter_mut() {
                *x = sigmoid(*x);
            }
        });
}

/// Original `bpnn_adjust_weights`: j-outer, k-inner; `w[k][j]` and
/// `oldw[k][j]` are walked with stride `ndelta+1` in the inner loop.
#[allow(clippy::needless_range_loop)] // indexed loops mirror the C kernel
pub fn adjust_weights_original(
    delta: &[f64],
    ndelta: usize,
    ly: &[f64],
    nly: usize,
    w: &mut [f64],
    oldw: &mut [f64],
) {
    let ld = ndelta + 1;
    const ETA: f64 = 0.3;
    const MOMENTUM: f64 = 0.3;
    for j in 1..=ndelta {
        for k in 0..=nly {
            let idx = k * ld + j;
            let new_dw = ETA * delta[j] * ly[k] + MOMENTUM * oldw[idx];
            w[idx] += new_dw;
            oldw[idx] = new_dw;
        }
    }
}

/// Transformed `bpnn_adjust_weights`: interchanged (k outer, j inner:
/// stride-1, SIMD) and parallel over rows.
pub fn adjust_weights_transformed(
    delta: &[f64],
    ndelta: usize,
    ly: &[f64],
    nly: usize,
    w: &mut [f64],
    oldw: &mut [f64],
) {
    let ld = ndelta + 1;
    const ETA: f64 = 0.3;
    const MOMENTUM: f64 = 0.3;
    w.par_chunks_mut(ld)
        .zip(oldw.par_chunks_mut(ld))
        .take(nly + 1)
        .enumerate()
        .for_each(|(k, (wrow, orow))| {
            let lyk = ly[k];
            for j in 1..=ndelta {
                let new_dw = ETA * delta[j] * lyk + MOMENTUM * orow[j];
                wrow[j] += new_dw;
                orow[j] = new_dw;
            }
        });
}

/// Build deterministic inputs of the given size.
pub fn make_inputs(n1: usize, n2: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let ld = n2 + 1;
    let conn: Vec<f64> = (0..(n1 + 1) * ld)
        .map(|i| ((i * 37 + 11) % 100) as f64 / 100.0 - 0.5)
        .collect();
    let l1: Vec<f64> = (0..=n1)
        .map(|i| ((i * 13 + 7) % 50) as f64 / 50.0)
        .collect();
    let l2 = vec![0.0; ld];
    (conn, l1, l2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_abs_diff;

    #[test]
    fn layerforward_variants_agree() {
        let (conn, l1, l2) = make_inputs(64, 48);
        let mut a = l2.clone();
        let mut b = l2.clone();
        let mut c = l2;
        layerforward_original(&l1, &mut a, &conn, 64, 48);
        layerforward_interchanged(&l1, &mut b, &conn, 64, 48);
        layerforward_parallel(&l1, &mut c, &conn, 64, 48);
        assert!(max_abs_diff(&a, &b) < 1e-12, "{}", max_abs_diff(&a, &b));
        assert!(max_abs_diff(&a, &c) < 1e-12, "{}", max_abs_diff(&a, &c));
        // outputs are sigmoids
        assert!(a[1] > 0.0 && a[1] < 1.0);
    }

    #[test]
    fn adjust_variants_agree() {
        let n1 = 40;
        let n2 = 32;
        let ld = n2 + 1;
        let delta: Vec<f64> = (0..ld).map(|i| (i % 9) as f64 * 0.01).collect();
        let ly: Vec<f64> = (0..=n1).map(|i| (i % 5) as f64 * 0.1).collect();
        let w0: Vec<f64> = (0..(n1 + 1) * ld).map(|i| (i % 11) as f64 * 0.1).collect();
        let o0: Vec<f64> = (0..(n1 + 1) * ld).map(|i| (i % 7) as f64 * 0.1).collect();
        let (mut w1, mut o1) = (w0.clone(), o0.clone());
        let (mut w2, mut o2) = (w0, o0);
        adjust_weights_original(&delta, n2, &ly, n1, &mut w1, &mut o1);
        adjust_weights_transformed(&delta, n2, &ly, n1, &mut w2, &mut o2);
        assert!(max_abs_diff(&w1, &w2) < 1e-12);
        assert!(max_abs_diff(&o1, &o2) < 1e-12);
    }
}
