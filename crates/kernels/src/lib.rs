//! # kernels — native original-vs-transformed kernels (Tables 3 and 4)
//!
//! The paper measures the *suggested transformations* on real hardware
//! (icc + Xeon); this crate reproduces the mechanism on the host CPU: each
//! case-study kernel exists in its original form and in the form Poly-Prof
//! suggests (interchange + SIMD-friendly layout for backprop; tiling +
//! outer-loop parallelism for GemsFDTD). The Criterion benches in
//! `polyprof-bench` measure both and report the speedup *shape*: the
//! transformed variant must win by a factor of a few.
//!
//! `rayon` supplies the `OMP PARALLEL DO` counterpart.

pub mod backprop;
pub mod gemsfdtd;

/// Compare two result slices elementwise within `tol`.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_helper() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.0, 2.5]), 0.5);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }
}
